"""Supplementary: request latency percentiles per scheme.

The paper reports throughput only; operators also care about tail
latency, which the simulator tracks for free (reservoir-sampled
percentiles over the measured window).  Reuses the Figure 7 lineup:
SRC, SRC-S2D, Bcache5, Flashcache5 on each trace group.

Expected shape: the log-structured targets (SRC) ack buffered writes in
microseconds but pay periodic segment-write stalls; the block-mapped
baselines spread cost across every request; everyone's p99 is dominated
by backend round-trips on misses.

An extra ``SRC-inline`` row disables the background reclaim scheduler
(``background_reclaim=False``) so the split-phase pipeline's tail-latency
win over the legacy inline-GC/destage path is visible side by side.

Two ``(paced)`` rows replay with a per-thread think time so the two SRC
variants meet at equal offered throughput.  Saturated closed-loop replay
is a degenerate comparison point for background work: the inline path's
blocking acks throttle the offered load, so freeing the foreground only
admits more load into a device with no spare capacity.  With any
idleness in the arrival process the background scheduler soaks it up and
the foreground tail drops — that paced regime is where the pipeline's
p99 win is measured.
"""

from __future__ import annotations

from repro.core.config import ReclaimConfig, SrcConfig
from repro.harness.context import (CACHE_SPACE, DEFAULT_SCALE,
                                   ExperimentScale, build_src)
from repro.harness.exp_fig7 import SCHEMES, _builders
from repro.harness.results import ExperimentResult
from repro.harness.runner import TRACE_GROUPS, run_trace_group

LINEUP = tuple(SCHEMES) + ("SRC-inline",)
# Per-thread pause between completion and next issue for the paced
# rows: enough idleness for background reclaim to hide in, with both
# SRC variants still within ~1% of each other's throughput.
PACED_THINK = 0.002


def run(es: ExperimentScale = DEFAULT_SCALE) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Supplementary (latency)",
        title="Request latency, measured window: p50 | p99 | max (ms)",
        columns=["Scheme"] + list(TRACE_GROUPS),
    )
    builders = dict(_builders(es))
    builders["SRC-inline"] = lambda: build_src(
        es.scale, SrcConfig(cache_space=CACHE_SPACE,
                            reclaim=ReclaimConfig(
                                background_reclaim=False)))
    cells = {scheme: [] for scheme in LINEUP}
    for group in TRACE_GROUPS:
        for scheme in LINEUP:
            target = builders[scheme]()
            res = run_trace_group(target, group, es)
            lat = res.latency
            cells[scheme].append(
                f"{lat.p50 * 1e3:.2f} | {lat.p99 * 1e3:.1f} | "
                f"{lat.max * 1e3:.0f}")
    for scheme in LINEUP:
        result.add_row(scheme, *cells[scheme])

    # Equal-throughput comparison: pace the replay threads and rerun
    # the two SRC variants side by side on the write-dominant group.
    paced = {}
    for scheme in ("SRC", "SRC-inline"):
        res = run_trace_group(builders[scheme](), "write", es,
                              think_time=PACED_THINK)
        paced[scheme] = res
        lat = res.latency
        result.add_row(
            f"{scheme} (paced)",
            f"{lat.p50 * 1e3:.2f} | {lat.p99 * 1e3:.1f} | "
            f"{lat.max * 1e3:.0f}",
            "-", "-")

    result.notes.append("not in the paper; percentiles from a "
                        "reservoir sample of the measured window")
    result.notes.append("SRC-inline = background_reclaim off: GC and "
                        "destage run inside the foreground ack path")
    result.notes.append(
        f"paced rows: write group, {PACED_THINK * 1e3:.0f} ms think "
        "time per replay thread — equal offered throughput ("
        f"SRC {paced['SRC'].throughput_mb_s:.1f} vs SRC-inline "
        f"{paced['SRC-inline'].throughput_mb_s:.1f} MB/s)")
    return result


if __name__ == "__main__":
    print(run().render())
