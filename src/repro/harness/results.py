"""Experiment result containers and plain-text rendering.

Each experiment module returns an :class:`ExperimentResult` whose rows
mirror the corresponding table or figure series in the paper, so the
benchmark harness can print paper-shaped output and assert on shape
properties (orderings, rough factors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure."""

    experiment: str                    # e.g. "Table 8", "Figure 7a"
    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.experiment}: row has {len(values)} values for "
                f"{len(self.columns)} columns")
        self.rows.append(list(values))

    def column(self, name: str) -> List[object]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def cell(self, row_key: object, column: str) -> object:
        """Value at (first column == row_key, column)."""
        col = self.columns.index(column)
        for row in self.rows:
            if row[0] == row_key:
                return row[col]
        raise KeyError(f"{self.experiment}: no row {row_key!r}")

    def as_dict(self) -> dict:
        """JSON-ready form (the unified stats-protocol spelling)."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """Monospace table, paper-style."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        header = [self.title, ""]
        widths = [len(c) for c in self.columns]
        str_rows = [[fmt(v) for v in row] for row in self.rows]
        for row in str_rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        line = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        header.append(line)
        header.append("-" * len(line))
        for row in str_rows:
            header.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            header.append(f"note: {note}")
        return "\n".join(header)


def ratio(a: float, b: float) -> float:
    """a/b guarded against division by zero."""
    return a / b if b else float("inf")
