"""Figure 4: impact of the erase group size on SRC.

Sweeps SRC's erase-group (Segment Group unit) size over the trace
groups with UMAX at 90%.  Paper shape: throughput improves as the
erase group grows toward the SSDs' 256 MB unit; I/O amplification is
minimized at the small end (small units are more fully utilized).
"""

from __future__ import annotations


from repro.common.units import MIB
from repro.core.config import SrcConfig
from repro.harness.context import (CACHE_SPACE, DEFAULT_SCALE,
                                   ExperimentScale, build_src)
from repro.harness.results import ExperimentResult
from repro.harness.runner import TRACE_GROUPS, run_trace_group

# Nominal erase group sizes (paper sweeps 2MB..1GB; scaled runs keep
# the sizes that remain distinct after scale-down).
ERASE_SIZES_MB = (32, 64, 128, 256, 512, 1024)


def run(es: ExperimentScale = DEFAULT_SCALE,
        sizes=ERASE_SIZES_MB) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 4",
        title="SRC vs erase group size: throughput MB/s "
              "(I/O amplification)",
        columns=["Group"] + [f"{s}MB" for s in sizes],
    )
    for group in TRACE_GROUPS:
        row = [group]
        for size in sizes:
            config = SrcConfig(cache_space=CACHE_SPACE,
                               erase_group_size=size * MIB)
            cache = build_src(es.scale, config=config)
            res = run_trace_group(cache, group, es)
            row.append(f"{res.throughput_mb_s:.1f} "
                       f"({res.io_amplification:.2f})")
        result.add_row(*row)
    result.notes.append("paper shape: throughput rises with erase group "
                        "size; amplification minimized at the small end")
    return result


if __name__ == "__main__":
    print(run().render())
