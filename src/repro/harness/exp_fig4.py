"""Figure 4: impact of the erase group size on SRC.

Sweeps SRC's erase-group (Segment Group unit) size over the trace
groups with UMAX at 90%.  Paper shape: throughput improves as the
erase group grows toward the SSDs' 256 MB unit; I/O amplification is
minimized at the small end (small units are more fully utilized).
"""

from __future__ import annotations

from functools import partial

from repro.common.units import MIB
from repro.core.config import SrcConfig
from repro.harness.context import (CACHE_SPACE, DEFAULT_SCALE,
                                   ExperimentScale, build_src)
from repro.harness.parallel import grid, parallel_map
from repro.harness.results import ExperimentResult
from repro.harness.runner import TRACE_GROUPS, run_trace_group

# Nominal erase group sizes (paper sweeps 2MB..1GB; scaled runs keep
# the sizes that remain distinct after scale-down).
ERASE_SIZES_MB = (32, 64, 128, 256, 512, 1024)


def _cell(point: tuple, es: ExperimentScale) -> str:
    """One (group, erase size) point; module-level for pool pickling."""
    group, size = point
    config = SrcConfig(cache_space=CACHE_SPACE,
                       erase_group_size=size * MIB)
    cache = build_src(es.scale, config=config)
    res = run_trace_group(cache, group, es)
    return f"{res.throughput_mb_s:.1f} ({res.io_amplification:.2f})"


def run(es: ExperimentScale = DEFAULT_SCALE,
        sizes=ERASE_SIZES_MB, jobs: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 4",
        title="SRC vs erase group size: throughput MB/s "
              "(I/O amplification)",
        columns=["Group"] + [f"{s}MB" for s in sizes],
    )
    cells = parallel_map(partial(_cell, es=es),
                         grid(TRACE_GROUPS, sizes), jobs=jobs)
    for i, group in enumerate(TRACE_GROUPS):
        result.add_row(group, *cells[i * len(sizes):(i + 1) * len(sizes)])
    result.notes.append("paper shape: throughput rises with erase group "
                        "size; amplification minimized at the small end")
    return result


if __name__ == "__main__":
    print(run().render())
