"""Shared experiment context: device builders and scale presets.

Every experiment builds its stack through these helpers so that the
paper's §5.1 platform (four preconditioned 128 GB SSDs, an 18 GB cache
window, the iSCSI RAID-10 backend) is configured in exactly one place.

``ExperimentScale`` handles the scale-down: device capacities and trace
footprints shrink by ``scale`` while bandwidths and latencies stay
calibrated, so throughput numbers remain in real units and experiments
finish in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.baselines.bcache import BcacheDevice
from repro.baselines.common import WritePolicy
from repro.baselines.flashcache import FlashcacheDevice
from repro.block.device import BlockDevice, LinearDevice
from repro.common.units import GIB, KIB, MIB
from repro.core.config import SrcConfig
from repro.core.src import SrcCache
from repro.hdd.backend import PrimaryStorage
from repro.obs.recorder import attach as obs_attach
from repro.raid.array import make_raid
from repro.ssd.device import SSDDevice, precondition
from repro.ssd.spec import SATA_MLC_128, SsdSpec

# The paper's cache window: "we utilize only 18GB as our cache space".
CACHE_SPACE = 18 * GIB
# Preconditioning: fill until only the OPS size remains (§5.1).
PRECONDITION_FILL = 0.985


@dataclass(frozen=True)
class ExperimentScale:
    """Scale-down and run-length preset for one experiment run."""

    scale: float = 1 / 32
    warmup: float = 60.0       # simulated seconds before measurement
    duration: float = 10.0     # measured simulated seconds
    seed: int = 1
    fio_iodepth: int = 32      # the paper's FIO queue depth (§3.1)
    fio_threads: int = 4

    def quickened(self) -> "ExperimentScale":
        """Cheaper preset used by the pytest benchmarks."""
        return ExperimentScale(scale=1 / 64, warmup=25.0, duration=6.0,
                               seed=self.seed, fio_iodepth=8,
                               fio_threads=2)


DEFAULT_SCALE = ExperimentScale()
QUICK_SCALE = DEFAULT_SCALE.quickened()


def build_ssds(scale: float, n: int = 4,
               spec: SsdSpec = SATA_MLC_128,
               fill: float = PRECONDITION_FILL) -> List[SSDDevice]:
    """n preconditioned, scaled SSDs (paper Table 1 cache devices)."""
    scaled = spec.scaled(scale)
    ssds = [SSDDevice(scaled, name=f"{scaled.name}-{i}") for i in range(n)]
    for ssd in ssds:
        precondition(ssd, fill_fraction=fill)
        obs_attach(ssd)
    return ssds


def build_origin() -> PrimaryStorage:
    """The iSCSI RAID-10 backend (paper Table 1)."""
    return obs_attach(PrimaryStorage())


def build_src(scale: float, config: Optional[SrcConfig] = None,
              ssds: Optional[List[SSDDevice]] = None,
              origin: Optional[BlockDevice] = None,
              spec: SsdSpec = SATA_MLC_128) -> SrcCache:
    """An SRC stack at the given scale (defaults per Table 7)."""
    config = config or SrcConfig(cache_space=CACHE_SPACE)
    if config.cache_space == 0:
        from dataclasses import replace
        config = replace(config, cache_space=CACHE_SPACE)
    scaled_config = config.scaled(scale)
    ssds = ssds or build_ssds(scale, n=config.n_ssds, spec=spec)
    origin = origin or build_origin()
    spares = None
    if scaled_config.repair.hot_spares > 0:
        # Hot spares ship fresh from the box: no preconditioning, so a
        # rebuild lands on an empty FTL exactly like a drive swap would.
        scaled = spec.scaled(scale)
        spares = [SSDDevice(scaled, name=f"{scaled.name}-spare{i}")
                  for i in range(scaled_config.repair.hot_spares)]
        for spare in spares:
            obs_attach(spare)
    return obs_attach(SrcCache(ssds, origin, scaled_config, spares=spares))


def build_shard(scale: float, config: Optional[SrcConfig] = None,
                origin: Optional[BlockDevice] = None,
                spec: SsdSpec = SATA_MLC_128,
                label: str = "shard0") -> SrcCache:
    """One SRC shard stack for a cluster (named SSDs, shared origin)."""
    config = config or SrcConfig(cache_space=CACHE_SPACE)
    scaled = spec.scaled(scale)
    ssds = [SSDDevice(scaled, name=f"{label}-{scaled.name}-{i}")
            for i in range(config.n_ssds)]
    for ssd in ssds:
        precondition(ssd, fill_fraction=PRECONDITION_FILL)
        obs_attach(ssd)
    shard = build_src(scale, config=config, ssds=ssds, origin=origin,
                      spec=spec)
    shard.name = label
    return shard


def build_cluster(scale: float, n_shards: int = 4,
                  config: Optional[SrcConfig] = None,
                  cluster_config: Optional["ClusterConfig"] = None,
                  origin: Optional[BlockDevice] = None,
                  spec: SsdSpec = SATA_MLC_128) -> "ShardRouter":
    """A sharded SRC cluster: N independent stacks, one shared origin.

    Every shard fronts the *same* origin device — the cluster multiplexes
    one address space, it does not glue together N disjoint ones — and
    splits the paper's cache window evenly, so total cache capacity is
    scale-equivalent to a single ``build_src`` stack.
    """
    from repro.cluster import ClusterConfig, ShardRouter
    cluster_config = cluster_config or ClusterConfig(n_shards=n_shards)
    if cluster_config.n_shards != n_shards:
        from dataclasses import replace
        cluster_config = replace(cluster_config, n_shards=n_shards)
    origin = origin or build_origin()
    config = config or SrcConfig(cache_space=CACHE_SPACE // n_shards)
    shards = [build_shard(scale, config=config, origin=origin, spec=spec,
                          label=f"shard{i}")
              for i in range(n_shards)]
    return obs_attach(ShardRouter(shards, origin, cluster_config))


def build_cache_window(scale: float, raid_level: int,
                       chunk_size: int = 4 * KIB,
                       n: int = 4,
                       spec: SsdSpec = SATA_MLC_128,
                       ssds: Optional[List[SSDDevice]] = None
                       ) -> "tuple[BlockDevice, List[SSDDevice]]":
    """A RAID-over-SSDs cache device limited to the 18 GB window.

    This is the substrate the paper puts beneath Bcache and Flashcache
    for the Figure 1 / Figure 7 experiments.
    """
    ssds = ssds or build_ssds(scale, n=n, spec=spec)
    if raid_level < 0:   # single-device cache (Tables 2/3 setups)
        dev: BlockDevice = ssds[0]
    else:
        dev = make_raid(raid_level, list(ssds), chunk_size)
    window = min(dev.size, int(CACHE_SPACE * scale))
    linear = LinearDevice(dev, 0, window, name=f"cache-window-r{raid_level}")
    return obs_attach(linear), ssds


def build_bcache(scale: float, raid_level: int = 5,
                 policy: WritePolicy = WritePolicy.WRITE_BACK,
                 writeback_percent: float = 0.90,
                 origin: Optional[BlockDevice] = None,
                 n: int = 4) -> BcacheDevice:
    """Bcache5-style stack (bucket 2 MB, RAID chunk 4 KB, per §5.4)."""
    window, _ = build_cache_window(scale, raid_level, n=n)
    origin = origin or build_origin()
    return obs_attach(BcacheDevice(window, origin, bucket_size=2 * MIB,
                                   policy=policy,
                                   writeback_percent=writeback_percent))


def build_flashcache(scale: float, raid_level: int = 5,
                     policy: WritePolicy = WritePolicy.WRITE_BACK,
                     dirty_thresh_pct: float = 0.90,
                     origin: Optional[BlockDevice] = None,
                     n: int = 4) -> FlashcacheDevice:
    """Flashcache5-style stack (set 2 MB, RAID chunk 4 KB, per §5.4)."""
    window, _ = build_cache_window(scale, raid_level, n=n)
    origin = origin or build_origin()
    return obs_attach(FlashcacheDevice(window, origin, set_size=2 * MIB,
                                       policy=policy,
                                       dirty_thresh_pct=dirty_thresh_pct))
