"""Tenant isolation experiment: whale storm vs small-tenant p99.

A consolidated SRC array hosts a heavy-tailed tenant population
(:func:`repro.workloads.tenants.zipf_population`): several small
tenants whose working sets fit their reservations, and one write-heavy
*whale* whose footprint exceeds the whole cache.  Three runs:

* **alone** — the small tenants run without the whale: the baseline
  p99 each tenant would see on an unshared array;
* **shared (unenforced)** — the whale joins with QoS share enforcement
  off.  Its flood thrashes the log-structured cache (admissions,
  evictions, reclaim backpressure) and small-tenant p99 inflates —
  the interference the paper's single-tenant design ignores;
* **shared (enforced)** — same population with shares enforced: the
  whale is capped at its ``max_share`` occupancy (overflow writes go
  around the cache to the origin) and its submission rate is bounded
  by its token bucket.

Acceptance (checked here, reduced scale in CI): with enforcement the
worst small-tenant p99 stays within ``ISOLATION_BOUND`` of the alone
baseline, while the unenforced run must exceed it — otherwise the
storm was not violent enough to prove anything.  Shortfalls land in
the result notes as ``violation:`` lines; ``repro run tenants`` exits
nonzero on them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.common.units import PAGE_SIZE
from repro.core.config import QosConfig, SrcConfig
from repro.harness.context import (CACHE_SPACE, DEFAULT_SCALE,
                                   ExperimentScale, build_src)
from repro.harness.results import ExperimentResult, ratio
from repro.sim.engine import Engine, JobStream
from repro.tenancy import QosSpec, TenantRegistry
from repro.workloads.tenants import (TenantSpec, tenant_stream,
                                     volume_router, zipf_population)

# Small tenants keep a guaranteed slice; the whale gets a hard cap and
# a write-rate bucket.  Shares are fractions of cache data capacity.
# The reservation is sized to cover the largest small tenant's hot
# set: reclaim only protects blocks up to min_share, so a reservation
# well below the hot set leaves the rest churning between eviction and
# origin re-read (5 x 0.15 + whale 0.05 = 0.80 of capacity reserved).
SMALL_QOS = QosSpec(min_share=0.15, max_share=0.50, name="small")
# The whale's write cap bounds how fast it can churn the shared log
# (segment fills, reclaim work); residency isolation itself comes from
# admission control plus reservation-aware reclaim, which keep the
# small tenants miss-free no matter what the whale does.  Note the
# scale when sizing it: whale writes that spill to the origin
# (write-around over its max_share, destage otherwise) land as random
# 4 KiB writes on a RAID-10 of 7.2k disks that sustains only ~300 of
# those per second (~1.2 MiB/s), so a cap far above that would bury
# the backend under its own spill.
WHALE_QOS = QosSpec(min_share=0.05, max_share=0.25, max_write_mb_s=1.0,
                    name="whale")
N_TENANTS = 6          # 1 whale + 5 small
WHALE_STREAMS = 4      # the storm: 4 closed-loop jobs vs 1 per small
# Enforced-mode bound: worst small-tenant p99 may not exceed this
# factor of its alone baseline (and unenforced must exceed it).
ISOLATION_BOUND = 1.25


class _WarmupCut:
    """Engine sampler that ends the warmup window mid-run.

    At the first completion past ``warmup`` it resets the registry's
    per-tenant latency reservoirs and snapshots the cumulative byte
    count, so percentiles and throughput cover only the measured
    window without restarting the engine clock (which would confuse
    the tenants' token buckets)."""

    def __init__(self, registry: TenantRegistry, warmup: float):
        self.registry = registry
        self.warmup = warmup
        self.cut_bytes = 0
        self.done = warmup <= 0

    def observe(self, now: float, totals) -> None:
        if not self.done and now >= self.warmup:
            self.registry.reset_latency()
            self.cut_bytes = totals.total_bytes
            self.done = True


def _population(es: ExperimentScale, capacity_bytes: int,
                with_whale: bool) -> List[TenantSpec]:
    """The tenant mix: demand ~2x capacity, nearly all of it whale.

    ``alpha=4.0`` keeps the tail small on purpose: every small
    tenant's working set must fit its reservation (largest small
    ~0.06 of demand ~= 0.12 of capacity < min_share), because a
    tenant whose hot set exceeds its guaranteed slice churns against
    reclaim no matter how good the isolation is — each re-read costs
    a ~13 ms disk access, which no QoS knob can hide from p99.
    """
    specs = zipf_population(
        n_tenants=N_TENANTS, total_bytes=2 * capacity_bytes,
        n_whales=1, alpha=4.0,
        whale_qos=WHALE_QOS, small_qos=SMALL_QOS,
        read_fraction=0.5, whale_read_fraction=0.05, seed=es.seed)
    whale = replace(specs[0], streams=WHALE_STREAMS)
    smalls = specs[1:]
    return ([whale] + smalls) if with_whale else smalls


def _run_mode(es: ExperimentScale, with_whale: bool,
              enforce: bool) -> dict:
    """One run: build a fresh array, populate it, storm it, measure."""
    config = SrcConfig(cache_space=CACHE_SPACE,
                       qos=QosConfig(enforce_shares=enforce))
    cache = build_src(es.scale, config)
    registry = TenantRegistry(cache)
    capacity_bytes = registry.capacity_blocks * PAGE_SIZE
    specs = _population(es, capacity_bytes, with_whale)

    volumes: Dict[str, object] = {
        spec.name: registry.create_volume(spec.name, spec.volume_bytes,
                                          spec.qos)
        for spec in specs}
    cut = _WarmupCut(registry, es.warmup)
    engine = Engine(volume_router(volumes), sampler=cut)
    for spec in specs:
        for i in range(spec.streams):
            engine.add_stream(JobStream(tenant_stream(spec, i),
                                        name=f"{spec.name}/{i}",
                                        iodepth=es.fio_iodepth))
    run = engine.run(duration=es.warmup + es.duration)
    registry.check_invariants()

    stats = registry.stats()
    small = {n: s for n, s in stats.items() if not n.startswith("whale")}
    whale = stats.get("whale0")
    worst_name, worst = max(small.items(),
                            key=lambda kv: kv[1]["latency"]["p99"])
    measured_bytes = run.stats.total_bytes - cut.cut_bytes
    return {
        "throughput": measured_bytes / 2**20 / es.duration,
        "small_p99": worst["latency"]["p99"],
        "small_name": worst_name,
        "small_hit_occ": sum(s["cached_blocks"] for s in small.values()),
        "whale_p99": whale["latency"]["p99"] if whale else 0.0,
        "whale_share": whale["share"] if whale else 0.0,
        "whale_max_share": (whale["qos"]["max_share"] if whale else 0.0),
        "rejected": whale["rejected_blocks"] if whale else 0,
        "write_arounds": whale["write_arounds"] if whale else 0,
        "throttle_waits": whale["throttle_waits"] if whale else 0,
        "stall_s": sum(s["stall_s"] for s in small.values()),
    }


MODES = (
    ("alone", False, True),
    ("shared (unenforced)", True, False),
    ("shared (enforced)", True, True),
)


def run(es: ExperimentScale = DEFAULT_SCALE) -> ExperimentResult:
    """The three-mode isolation comparison."""
    result = ExperimentResult(
        experiment="Tenants",
        title="Tenant isolation: 5 small tenants vs 1 write whale, "
              "per-tenant shares on the shared SRC array",
        columns=["Mode", "MB/s", "small p99 (ms)", "x alone",
                 "whale p99 (ms)", "whale share", "rejected",
                 "write-around"],
    )
    alone_p99 = 0.0
    rows: Dict[str, dict] = {}
    for label, with_whale, enforce in MODES:
        row = _run_mode(es, with_whale, enforce)
        rows[label] = row
        if label == "alone":
            alone_p99 = row["small_p99"]
        result.add_row(label, row["throughput"], row["small_p99"] * 1e3,
                       ratio(row["small_p99"], alone_p99),
                       row["whale_p99"] * 1e3, row["whale_share"],
                       row["rejected"], row["write_arounds"])

    enforced = rows["shared (enforced)"]
    unenforced = rows["shared (unenforced)"]
    if alone_p99 > 0 and enforced["small_p99"] > ISOLATION_BOUND * alone_p99:
        result.notes.append(
            f"violation: enforced shares let small-tenant p99 reach "
            f"{enforced['small_p99'] * 1e3:.2f} ms, over "
            f"{ISOLATION_BOUND:.2f}x the alone baseline "
            f"({alone_p99 * 1e3:.2f} ms)")
    if alone_p99 > 0 and \
            unenforced["small_p99"] <= ISOLATION_BOUND * alone_p99:
        result.notes.append(
            f"violation: unenforced whale storm failed to degrade "
            f"small-tenant p99 past {ISOLATION_BOUND:.2f}x the alone "
            f"baseline -- the interference being defended against did "
            f"not materialise")
    if enforced["whale_share"] > enforced["whale_max_share"] + 0.01:
        result.notes.append(
            f"violation: whale occupancy share "
            f"{enforced['whale_share']:.3f} exceeds its max_share "
            f"{enforced['whale_max_share']:.2f}")
    if not (enforced["rejected"] or enforced["throttle_waits"]):
        result.notes.append(
            "violation: enforced run neither rejected nor throttled "
            "any whale write; the caps never engaged")
    result.notes.append(
        f"enforced whale: {enforced['write_arounds']} write-arounds, "
        f"{enforced['throttle_waits']} rate-throttled writes, "
        f"occupancy share {enforced['whale_share']:.3f} "
        f"(cap {enforced['whale_max_share']:.2f})")
    result.notes.append(
        f"small-tenant stall attribution (enforced): "
        f"{enforced['stall_s'] * 1e3:.1f} ms total backpressure")
    result.notes.append(
        f"small-tenant cached blocks: alone "
        f"{rows['alone']['small_hit_occ']}, enforced "
        f"{enforced['small_hit_occ']}, unenforced "
        f"{unenforced['small_hit_occ']}")
    return result


def violations(result: ExperimentResult) -> List[str]:
    """The acceptance failures recorded in a result's notes."""
    return [n for n in result.notes if n.startswith("violation:")]


if __name__ == "__main__":
    from repro.harness.context import QUICK_SCALE
    out = run(QUICK_SCALE)
    print(out.render())
