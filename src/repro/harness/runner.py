"""Run helpers shared by the experiment modules."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from functools import partial

from repro.baselines.common import CacheTarget
from repro.block.device import BlockDevice
from repro.common.types import Op, Request
from repro.common.units import KIB, mb_per_sec
from repro.harness.context import ExperimentScale
from repro.harness.parallel import parallel_map
from repro.obs.recorder import get_recorder
from repro.sim.engine import run_streams
from repro.workloads import fio
from repro.workloads.replay import ReplayResult, replay_group

TRACE_GROUPS = ("write", "mixed", "read")


def run_trace_group(target: CacheTarget, group: str,
                    es: ExperimentScale,
                    think_time: float = 0.0) -> ReplayResult:
    """Replay one Table 6 trace group with the preset's windows.

    ``think_time`` paces each replay thread below saturation (zero, the
    default, is the paper's saturated replay).
    """
    return replay_group(target, group, scale=es.scale,
                        duration=es.duration, warmup=es.warmup,
                        seed=es.seed, think_time=think_time)


def _group_cell(group: str, build: Callable[[], CacheTarget],
                es: ExperimentScale) -> ReplayResult:
    """One trace-group replay on a fresh stack (pool-picklable)."""
    return run_trace_group(build(), group, es)


def run_all_groups(build: Callable[[], CacheTarget],
                   es: ExperimentScale,
                   jobs: int = 1) -> Dict[str, ReplayResult]:
    """Fresh stack per group, as the paper runs each group separately.

    ``jobs > 1`` replays the groups across a process pool (``build``
    must then be picklable — a module-level function or partial);
    results are identical to the serial path because each group builds
    its own seeded stack.
    """
    results = parallel_map(partial(_group_cell, build=build, es=es),
                           TRACE_GROUPS, jobs=jobs)
    return dict(zip(TRACE_GROUPS, results))


def run_fio_random_write(device: BlockDevice, es: ExperimentScale,
                         span: Optional[int] = None,
                         request_size: int = 4 * KIB,
                         iodepth: int = 0, threads: int = 0,
                         flush_every: int = 0) -> float:
    """The paper's FIO setting; returns write MB/s.

    4 KiB uniform-random writes, iodepth 32, 4 threads (§3.1) unless
    the scale preset narrows them.
    """
    iodepth = iodepth or es.fio_iodepth
    threads = threads or es.fio_threads
    span = span or device.size
    streams = fio.fio_job_streams(span, request_size, Op.WRITE,
                                  iodepth=iodepth, threads=threads,
                                  seed=es.seed)
    if flush_every:
        streams = [
            fio.uniform_random(span, request_size, Op.WRITE,
                               seed=es.seed * 1000 + i,
                               flush_every=flush_every)
            for i in range(iodepth * threads)
        ]

    def issue(req: Request, now: float) -> float:
        return device.submit(req, now)

    run = run_streams(issue, streams, duration=es.warmup + es.duration,
                      sampler=_sampler_for(device))
    return mb_per_sec(run.stats.write_bytes, run.elapsed)


def run_fio_sequential_write(device: BlockDevice, es: ExperimentScale,
                             span: Optional[int] = None,
                             request_size: int = 128 * KIB,
                             flush_every_bytes: int = 0) -> float:
    """Single sequential writer; returns write MB/s."""
    span = span or device.size
    stream = fio.sequential(span, request_size, Op.WRITE,
                            flush_every_bytes=flush_every_bytes)

    def issue(req: Request, now: float) -> float:
        return device.submit(req, now)

    run = run_streams(issue, [stream], duration=es.duration + es.warmup,
                      sampler=_sampler_for(device))
    return mb_per_sec(run.stats.write_bytes, run.elapsed)


def _sampler_for(device: BlockDevice):
    """The ambient recorder's sampler, bound to ``device`` (or None)."""
    recorder = get_recorder()
    if not recorder.enabled or recorder.sampler is None:
        return None
    recorder.sampler.bind_target(device)
    return recorder.sampler
