"""Seeded crash-point torture harness for SRC recovery (§4.1).

Each case builds a tiny SRC stack with every device behind a
:class:`~repro.faults.injector.FaultInjector`, replays a seeded mixed
workload, and cuts power at a chosen crash point — on an SSD's Nth
segment write (mid-segment-write / mid-GC), on the origin's Mth write
(mid-destage), at an absolute simulated time, on a hot spare's Nth
write (mid-rebuild, after a member fail-stop), or shortly after latent
corruption is seeded (mid-scrub-repair).  The injectors are
then disarmed and :func:`repro.core.recovery.recover` rebuilds the
cache from the surviving metadata, after which three invariants are
asserted:

1. **No acknowledged dirty write lost.**  A write is *durably
   acknowledged* once its segment seals (it left the RAM dirty buffer
   with the op completing normally); every such block must either be
   mapped dirty in the recovered cache or have reached the origin (the
   origin injector's ``written_pages`` proves destage).  A sealed
   version superseded by a newer, still-buffered rewrite is exempt:
   the newer version was only RAM-acknowledged, which write-back
   caching is allowed to lose.
2. **No torn segment replayed.**  Every summary whose MS/ME
   generations disagreed at crash time must be discarded by recovery
   and no recovered mapping entry may point into it.
3. **Mapping / group-state consistency.**  The recovered mapping's
   internal invariants hold, every mapped SG is CLOSED and accounted
   in the report, and nothing maps into the superblock SG.

The harness also demonstrates its own sensitivity: with the ME seal
deliberately skipped (``break_seal``) every crash must surface
invariant violations — a torture harness that cannot catch a broken
crash protocol proves nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.cluster import ClusterConfig, ShardRouter
from repro.common.errors import PowerCutError
from repro.common.types import Op, Request
from repro.common.units import GIB, KIB, MIB, PAGE_SIZE
from repro.core.config import RepairConfig, SrcConfig
from repro.core.metadata import MetadataStore
from repro.core.recovery import recover
from repro.core.src import SrcCache, _GroupState
from repro.faults import FaultInjector, FaultPlan
from repro.harness.context import DEFAULT_SCALE, ExperimentScale
from repro.harness.results import ExperimentResult
from repro.hdd.backend import PrimaryStorage
from repro.hdd.disk import DiskSpec
from repro.obs.recorder import attach as obs_attach
from repro.ssd.device import SSDDevice
from repro.ssd.spec import SsdSpec

# Deliberately minute geometry so GC and destage fire within ~1500 ops:
# 64 KiB units (16 blocks, 14 data), 256 KiB erase groups (4 segments),
# 2 MiB of cache per SSD (8 SGs).
TORTURE_SSD = SsdSpec(
    name="torture",
    capacity=16 * MIB,
    spare_factor=0.40,
    superblock_size=1 * MIB,
    interface_read_bw=530e6,
    interface_write_bw=390e6,
    interface_latency=20e-6,
    nand_read_bw=1600e6,
    nand_prog_bw=420e6,
    erase_latency=0.1e-3,
    flush_latency=3.5e-3,
    buffer_size=1 * MIB,
)

TORTURE_CONFIG = SrcConfig(
    erase_group_size=256 * KIB,
    segment_unit=64 * KIB,
    cache_space=8 * MIB,
    t_wait=5e-3,
)

MODES = ("ssd-write", "origin-write", "time", "rebuild-cut", "scrub-cut",
         "migrate-cut")
# Modes exercising the repro.repair subsystem run with a hot spare, a
# deliberately slow rebuild (so the crash window is wide) and a short
# scrub period (so idle pumps reach a scrub pass within the run).
REPAIR_MODES = ("rebuild-cut", "scrub-cut")
TORTURE_REPAIR_CONFIG = replace(TORTURE_CONFIG, repair=RepairConfig(
    hot_spares=1, rebuild_rate=2 * MIB, scrub_interval=0.02))
OPS_PER_CASE = 1600
LBA_SPAN = 1024          # pages of origin address space the workload hits

# The migrate-cut mode runs a 2-shard cluster and adds a third shard
# mid-run; fine-grained slabs and few vnodes keep the ring small enough
# that every arc sees traffic within the case's 1600 ops.
TORTURE_CLUSTER = ClusterConfig(
    n_shards=2, vnodes=8, slab_blocks=16, hash_seed=1,
    migration_rate=8 * MIB, migration_unit_blocks=16)


@dataclass
class CaseResult:
    """One crash point's outcome."""

    seed: int
    point: int
    mode: str
    crashed: bool
    ops_before_crash: int
    torn_at_crash: int
    segments_recovered: int = 0
    blocks_recovered: int = 0
    violations: List[str] = field(default_factory=list)


def _build_stack(break_seal: bool = False,
                 config: SrcConfig = TORTURE_CONFIG) -> Tuple[
        SrcCache, List[FaultInjector], List[FaultInjector],
        FaultInjector, MetadataStore]:
    ssds = [FaultInjector(SSDDevice(TORTURE_SSD, name=f"t{i}"),
                          name=f"fault{i}")
            for i in range(config.n_ssds)]
    spares = [FaultInjector(SSDDevice(TORTURE_SSD, name=f"spare{i}"),
                            name=f"fault-spare{i}")
              for i in range(config.repair.hot_spares)]
    origin = FaultInjector(
        PrimaryStorage(n_disks=2, disk_spec=DiskSpec(capacity=2 * GIB)),
        name="fault-origin", record_writes=True)
    metadata = MetadataStore()
    if break_seal:
        # The deliberate protocol break: the trailing ME block is never
        # written, so every segment stays torn and recovery must throw
        # away data the harness knows was acknowledged.
        metadata.seal_summary = lambda sg, segment: None
    cache = SrcCache(ssds, origin, config, metadata=metadata,
                     spares=spares or None)
    return obs_attach(cache), ssds, spares, origin, metadata


def _arm(case: CaseResult, ssds: List[FaultInjector],
         spares: List[FaultInjector], origin: FaultInjector,
         rng: random.Random) -> None:
    """Install the crash point for this case."""
    step = case.point // len(MODES) + 1
    if case.mode == "ssd-write":
        # Segment writes reach every SSD, so cutting one SSD's Nth
        # write lands mid-segment-write (or mid-GC once N is large).
        victim = rng.randrange(len(ssds))
        ssds[victim].plan = FaultPlan(seed=case.seed,
                                      power_cut_after_writes=step)
    elif case.mode == "origin-write":
        # Origin writes only happen on destage.
        origin.plan = FaultPlan(seed=case.seed,
                                power_cut_after_writes=step)
    elif case.mode == "rebuild-cut":
        # Fail one member early so the hot spare is attached, then cut
        # power on the spare's Nth write — mid-rebuild, since every
        # write the spare sees is either reconstruction or a segment
        # share landing on a still-rebuilding slot.
        victim = rng.randrange(len(ssds))
        ssds[victim].plan = FaultPlan(seed=case.seed).fail_stop(
            at=0.002 + 0.010 * rng.random())
        spares[0].plan = FaultPlan(seed=case.seed,
                                   power_cut_after_writes=step)
    elif case.mode == "scrub-cut":
        # Armed mid-run by _seed_scrub_corruption: corruption first,
        # then a write-count cut close behind the scrubber's repair.
        pass
    else:
        at = rng.uniform(0.0, 0.15) * step / max(1, case.point + 1) + \
            rng.uniform(0.0, 0.05)
        ssds[0].plan = FaultPlan(seed=case.seed, power_cut_at=at)


def _seed_scrub_corruption(cache: SrcCache, rng: random.Random,
                           seed: int, step: int) -> None:
    """Corrupt a few sealed mapped blocks, then arm a near-term cut.

    The corruption sits latent until the periodic scrub reaches it;
    the write-count cut on the corrupted member lands at or shortly
    after the scrubber's repair write.
    """
    live = []
    for summary in cache.metadata.all_summaries():
        for lba in summary.lbas:
            entry = cache.mapping.lookup(lba)
            if (entry is not None and entry.location.sg == summary.sg
                    and entry.location.segment == summary.segment):
                live.append(entry)
    victim_idx = rng.randrange(len(cache.ssds))
    for entry in rng.sample(live, min(4, len(live))):
        device = cache.ssds[entry.location.ssd]
        device.inject_corruption(entry.location.offset, PAGE_SIZE)
        victim_idx = entry.location.ssd
    victim = cache.ssds[victim_idx]
    victim.plan = FaultPlan(
        seed=seed,
        power_cut_after_writes=victim.writes_seen + step)


def _build_cluster_shard(label: str, origin: FaultInjector,
                         break_seal: bool = False) -> Tuple[
        SrcCache, List[FaultInjector], MetadataStore]:
    """One tiny SRC shard behind injectors, sharing the cluster origin."""
    ssds = [FaultInjector(SSDDevice(TORTURE_SSD, name=f"{label}t{i}"),
                          name=f"fault-{label}{i}")
            for i in range(TORTURE_CONFIG.n_ssds)]
    metadata = MetadataStore()
    if break_seal:
        metadata.seal_summary = lambda sg, segment: None
    shard = SrcCache(ssds, origin, TORTURE_CONFIG, metadata=metadata)
    shard.name = label
    return shard, ssds, metadata


def _run_migrate_cut(case: CaseResult, rng: random.Random,
                     break_seal: bool = False) -> CaseResult:
    """Power cut during an online shard add; recovery must leave every
    block with exactly one owner and zero lost acknowledged dirty.

    Two tiny shards take a seeded workload through a
    :class:`~repro.cluster.router.ShardRouter`; a third shard is added
    a third of the way in, so the cut (armed on the new shard's SSD
    writes for odd steps — every write it sees is a migration copy — or
    on a source shard's SSD counted from the add for even steps) lands
    mid-rebalance.  The shards then recover independently from their
    metadata, the router is rebuilt over the surviving
    :class:`MigrationLedger`, ``recover_interrupted`` resumes the
    hand-off, and the resumed migration is drained to completion.
    """
    step = case.point // len(MODES) + 1
    origin = FaultInjector(
        PrimaryStorage(n_disks=2, disk_spec=DiskSpec(capacity=2 * GIB)),
        name="fault-origin", record_writes=True)
    shards, ssd_groups, metadatas = [], [], []
    for index in range(TORTURE_CLUSTER.n_shards):
        shard, ssds, metadata = _build_cluster_shard(
            f"shard{index}", origin, break_seal=break_seal and index == 0)
        shards.append(shard)
        ssd_groups.append(ssds)
        metadatas.append(metadata)
    new_shard, new_ssds, new_metadata = _build_cluster_shard(
        "shard-new", origin)
    router = obs_attach(ShardRouter(shards, origin, TORTURE_CLUSTER,
                                    name="torture-cluster"))
    if step % 2 == 1:
        # Every write the new shard's SSDs see is a migration copy
        # landing, so its Nth write is mid-rebalance by construction.
        new_ssds[rng.randrange(len(new_ssds))].plan = FaultPlan(
            seed=case.seed, power_cut_after_writes=step)

    add_at = OPS_PER_CASE // 3
    buffered: set = set()
    sealed: set = set()
    now = 0.0
    try:
        for op_index in range(OPS_PER_CASE):
            case.ops_before_crash = op_index
            if op_index == add_at:
                router.add_shard(new_shard, now)
                if step % 2 == 0:
                    # Source-side cut: land on one of the shards the
                    # migration is reading from, shortly after the add.
                    victim = ssd_groups[rng.randrange(len(ssd_groups))]
                    injector = victim[rng.randrange(len(victim))]
                    injector.plan = FaultPlan(
                        seed=case.seed,
                        power_cut_after_writes=(injector.writes_seen
                                                + step))
            lba = rng.randrange(LBA_SPAN)
            draw = rng.random()
            if draw < 0.70:
                req = Request(Op.WRITE, lba * PAGE_SIZE, PAGE_SIZE)
            elif draw < 0.95:
                req = Request(Op.READ, lba * PAGE_SIZE, PAGE_SIZE)
            else:
                req = Request(Op.FLUSH)
            end = router.submit(req, now)
            if req.op is Op.WRITE:
                buffered.add(lba)
                sealed.discard(lba)   # newest version is RAM-only again
            for done in [b for b in buffered
                         if all(b not in s.dirty_buf
                                for s in router.shards.values())]:
                buffered.discard(done)
                sealed.add(done)
            now = max(now, end) + 10e-6
    except PowerCutError:
        case.crashed = True

    # ------------------------------------------------------------------
    # the machine is dead; the shard metadata and the migration ledger
    # are what survives.
    # ------------------------------------------------------------------
    all_metadata = metadatas + [new_metadata]
    torn = [(m, s.sg, s.segment) for m in all_metadata
            for s in m.all_summaries() if not s.consistent]
    case.torn_at_crash = len(torn)
    for injectors in ssd_groups + [new_ssds]:
        for injector in injectors:
            injector.disarm()
    origin.disarm()

    ledger = router.ledger
    add_completed = not ledger.active and 2 in router.shards
    recovered = []
    discarded = 0
    for shard, metadata in zip(shards + [new_shard], all_metadata):
        cache, report = recover(list(shard.ssds), origin, TORTURE_CONFIG,
                                metadata)
        cache.name = shard.name
        recovered.append(cache)
        case.segments_recovered += report.segments_recovered
        case.blocks_recovered += report.blocks_recovered
        discarded += report.segments_discarded
    if discarded != len(torn):
        case.violations.append(
            f"discarded {discarded} segments, expected {len(torn)} torn")

    resume_at = now + 1.0
    if add_completed:
        config3 = replace(TORTURE_CLUSTER, n_shards=3)
        rebuilt = ShardRouter(recovered, origin, config3, ledger=ledger,
                              name="torture-cluster")
        rebuilt.recover_interrupted(resume_at)
    else:
        rebuilt = ShardRouter(recovered[:2], origin, TORTURE_CLUSTER,
                              ledger=ledger, name="torture-cluster")
        rebuilt.recover_interrupted(
            resume_at, new_shard=recovered[2] if ledger.active else None)
        # Drain the resumed migration to completion.
        t = resume_at
        for _ in range(200_000):
            if rebuilt._migration is None:
                break
            rebuilt.pump(t)
            t += 1e-3
        else:
            case.violations.append("resumed migration did not complete")
        rebuilt.reconcile(t)

    # Invariant 1: every durably-acknowledged dirty block survived on
    # some shard or reached the origin before the cut.
    assert origin.written_pages is not None
    for lba in sorted(sealed):
        if lba in origin.written_pages:
            continue
        holders = [slot for slot, shard in rebuilt.shards.items()
                   if (entry := shard.mapping.lookup(lba)) is not None
                   and entry.dirty]
        if not holders:
            case.violations.append(
                f"acked dirty lba {lba} lost (not mapped, not destaged)")

    # Invariant 2: exactly one owner per cached block.
    dirty_holders: Dict[int, int] = {}
    for slot, shard in rebuilt.shards.items():
        for lba, dirty in shard.cached_blocks():
            if rebuilt.owner_slot(lba) != slot:
                case.violations.append(
                    f"lba {lba} cached on slot {slot}, owned by "
                    f"{rebuilt.owner_slot(lba)}")
            if dirty:
                if lba in dirty_holders:
                    case.violations.append(
                        f"lba {lba} dirty on slots {dirty_holders[lba]} "
                        f"and {slot}")
                dirty_holders[lba] = slot

    # Invariant 3: per-shard mapping consistency.
    for shard in rebuilt.shards.values():
        try:
            shard.mapping.check_invariants()
        except AssertionError as exc:
            case.violations.append(
                f"{shard.name} mapping invariant: {exc}")
    return case


def run_case(seed: int, point: int, break_seal: bool = False,
             config: SrcConfig = TORTURE_CONFIG) -> CaseResult:
    """Run one seeded workload to one crash point and check recovery."""
    case = CaseResult(seed=seed, point=point, mode=MODES[point % len(MODES)],
                      crashed=False, ops_before_crash=0, torn_at_crash=0)
    if case.mode == "migrate-cut":
        rng = random.Random((seed << 20) ^ point)
        return _run_migrate_cut(case, rng, break_seal=break_seal)
    if case.mode in REPAIR_MODES and config.repair.hot_spares == 0:
        # The repair crash modes need a spare to cut and a scrubber to
        # interrupt, whatever config the caller brought.
        config = replace(config, repair=TORTURE_REPAIR_CONFIG.repair)
    rng = random.Random((seed << 20) ^ point)
    cache, ssds, spares, origin, metadata = _build_stack(
        break_seal=break_seal, config=config)
    _arm(case, ssds, spares, origin, rng)

    buffered: set = set()     # acked into RAM only — may be lost
    sealed: set = set()       # left the dirty buffer under a completed op
    now = 0.0
    try:
        for op_index in range(OPS_PER_CASE):
            case.ops_before_crash = op_index
            if case.mode == "scrub-cut" and op_index == OPS_PER_CASE // 3:
                _seed_scrub_corruption(cache, rng, seed,
                                       case.point // len(MODES) + 1)
            lba = rng.randrange(LBA_SPAN)
            draw = rng.random()
            if draw < 0.70:
                req = Request(Op.WRITE, lba * PAGE_SIZE, PAGE_SIZE)
            elif draw < 0.95:
                req = Request(Op.READ, lba * PAGE_SIZE, PAGE_SIZE)
            else:
                req = Request(Op.FLUSH)
            end = cache.submit(req, now)
            if req.op is Op.WRITE:
                buffered.add(lba)
                sealed.discard(lba)   # newest version is RAM-only again
            for done in [b for b in buffered if b not in cache.dirty_buf]:
                buffered.discard(done)
                sealed.add(done)
            now = max(now, end) + 10e-6
            if rng.random() < 0.01:
                now += config.t_wait * 1.5   # idle: TWAIT path
    except PowerCutError:
        case.crashed = True

    # ------------------------------------------------------------------
    # the machine is dead; what is durable is what the metadata says.
    # ------------------------------------------------------------------
    torn_before = [(s.sg, s.segment) for s in metadata.all_summaries()
                   if not s.consistent]
    case.torn_at_crash = len(torn_before)
    for injector in ssds + spares + [origin]:
        injector.disarm()

    # Recover over the post-swap array: a slot whose member failed and
    # was taken by a hot spare mid-run holds the spare now.
    recovered, report = recover(list(cache.ssds), origin, config, metadata)
    case.segments_recovered = report.segments_recovered
    case.blocks_recovered = report.blocks_recovered

    # Invariant 1: every durably-acknowledged dirty block survived.
    assert origin.written_pages is not None
    for lba in sorted(sealed):
        entry = recovered.mapping.lookup(lba)
        if entry is not None and entry.dirty:
            continue
        if lba in origin.written_pages:
            continue   # destaged before the crash
        case.violations.append(
            f"acked dirty lba {lba} lost (not mapped, not destaged)")

    # Invariant 2: torn segments are discarded, never replayed.
    if report.segments_discarded != len(torn_before):
        case.violations.append(
            f"discarded {report.segments_discarded} segments, expected "
            f"{len(torn_before)} torn")
    for sg, segment in torn_before:
        if metadata.read_summary(sg, segment) is not None:
            case.violations.append(
                f"torn summary ({sg},{segment}) survived recovery")
        for lba, entry in recovered.mapping.sg_blocks(sg):
            if entry.location.segment == segment:
                case.violations.append(
                    f"lba {lba} mapped into torn segment ({sg},{segment})")

    # Invariant 3: mapping and group-state consistency.
    try:
        recovered.mapping.check_invariants()
    except AssertionError as exc:
        case.violations.append(f"mapping invariant: {exc}")
    mapped_sgs = {e.location.sg
                  for _, e in _all_entries(recovered)}
    for sg in sorted(mapped_sgs):
        if sg == 0:
            case.violations.append("block mapped into superblock SG 0")
        elif recovered.groups[sg].state is not _GroupState.CLOSED:
            case.violations.append(
                f"mapped SG {sg} is {recovered.groups[sg].state}, "
                "not closed")
        elif sg not in report.groups_in_use:
            case.violations.append(f"mapped SG {sg} missing from report")
    return case


def _all_entries(cache: SrcCache):
    for sg in range(cache.layout.groups):
        yield from cache.mapping.sg_blocks(sg)


def run(es: ExperimentScale = DEFAULT_SCALE, seeds: int = 5,
        points: int = 50, demonstrate_break: bool = False,
        ) -> ExperimentResult:
    """The full torture matrix: ``seeds`` x ``points`` crash cases."""
    result = ExperimentResult(
        experiment="Faults",
        title=f"Crash-point torture: {seeds} seeds x {points} points "
              "(power cut mid-segment-write / mid-GC / mid-destage / "
              "mid-rebuild / mid-scrub-repair / mid-shard-migration)",
        columns=["Mode", "Cases", "Crashed", "Torn found",
                 "Blocks recovered", "Violations"],
    )
    per_mode: Dict[str, List[CaseResult]] = {m: [] for m in MODES}
    for seed_index in range(seeds):
        for point in range(points):
            case = run_case(es.seed + seed_index, point)
            per_mode[case.mode].append(case)
    total_violations = 0
    for mode in MODES:
        cases = per_mode[mode]
        violations = sum(len(c.violations) for c in cases)
        total_violations += violations
        result.add_row(
            mode, len(cases), sum(c.crashed for c in cases),
            sum(c.torn_at_crash for c in cases),
            sum(c.blocks_recovered for c in cases), violations)
    all_cases = [c for cases in per_mode.values() for c in cases]
    result.add_row("TOTAL", len(all_cases),
                   sum(c.crashed for c in all_cases),
                   sum(c.torn_at_crash for c in all_cases),
                   sum(c.blocks_recovered for c in all_cases),
                   total_violations)
    for case in all_cases:
        for violation in case.violations:
            result.notes.append(
                f"seed {case.seed} point {case.point} ({case.mode}): "
                f"{violation}")

    if demonstrate_break:
        caught = demonstrate_broken_seal(es.seed)
        result.notes.append(
            f"deliberate break (ME seal skipped): {caught} violation(s) "
            f"caught — harness is sensitive" if caught else
            "deliberate break (ME seal skipped): NOT caught — harness "
            "is blind!")
    return result


def demonstrate_broken_seal(seed: int, max_points: int = 30) -> int:
    """Skip the ME seal and count the violations the harness raises.

    Scans crash points until one actually fires mid-run with sealed
    data at stake; returns the violation count there (0 means the
    harness failed to notice a broken crash protocol).
    """
    for point in range(max_points):
        case = run_case(seed, point, break_seal=True)
        if case.crashed and case.violations:
            return len(case.violations)
    return 0


if __name__ == "__main__":
    print(run(seeds=2, points=12, demonstrate_break=True).render())
