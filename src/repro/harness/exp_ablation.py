"""Ablations of SRC design choices called out in DESIGN.md.

* Hotness-aware S2S vs blind S2S (copy every clean block): isolates
  the value of the per-page hotness bitmap (§4.2).
* ``separate_hot_clean`` (the §6 future-work option): groups hot clean
  data apart from dirty data during S2S copies.
"""

from __future__ import annotations

from repro.core.config import GcScheme, ReclaimConfig, SrcConfig
from repro.harness.context import (CACHE_SPACE, DEFAULT_SCALE,
                                   ExperimentScale, build_src)
from repro.harness.results import ExperimentResult
from repro.harness.runner import TRACE_GROUPS, run_trace_group

VARIANTS = [
    ("hotness-aware", dict()),
    ("blind-S2S", dict(hotness_aware=False)),
    ("separate-hot-clean", dict(separate_hot_clean=True)),
]


def run(es: ExperimentScale = DEFAULT_SCALE) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Ablation",
        title="SRC design ablations, MB/s (I/O amplification)",
        columns=["Group"] + [name for name, _ in VARIANTS],
    )
    for group in TRACE_GROUPS:
        row = [group]
        for _, overrides in VARIANTS:
            config = SrcConfig(cache_space=CACHE_SPACE,
                               reclaim=ReclaimConfig(
                                   gc_scheme=GcScheme.SEL_GC, **overrides))
            cache = build_src(es.scale, config=config)
            res = run_trace_group(cache, group, es)
            row.append(f"{res.throughput_mb_s:.1f} "
                       f"({res.io_amplification:.2f})")
        result.add_row(*row)
    result.notes.append("expected: blind S2S raises amplification "
                        "without throughput gain")
    return result


if __name__ == "__main__":
    print(run().render())
