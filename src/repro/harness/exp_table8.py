"""Table 8: free space management — GC scheme x victim policy.

S2D vs Sel-GC crossed with FIFO vs Greedy victim selection, UMAX 90%.
Paper shape: Sel-GC considerably outperforms S2D on every group (hot
data conserved by S2S copying) at the cost of higher I/O amplification;
FIFO edges Greedy on Write/Mixed, Greedy wins on Read.
"""

from __future__ import annotations

from repro.block.device import StatsDevice
from repro.core.config import (GcScheme, ReclaimConfig, SrcConfig,
                               VictimPolicy)
from repro.harness.context import (CACHE_SPACE, DEFAULT_SCALE,
                                   ExperimentScale, build_src, build_ssds)
from repro.harness.results import ExperimentResult
from repro.harness.runner import TRACE_GROUPS, run_trace_group

COMBOS = [
    ("S2D/FIFO", GcScheme.S2D, VictimPolicy.FIFO),
    ("S2D/Greedy", GcScheme.S2D, VictimPolicy.GREEDY),
    ("Sel-GC/FIFO", GcScheme.SEL_GC, VictimPolicy.FIFO),
    ("Sel-GC/Greedy", GcScheme.SEL_GC, VictimPolicy.GREEDY),
]


def run(es: ExperimentScale = DEFAULT_SCALE) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Table 8",
        title="Free space management, MB/s (I/O amplification)",
        columns=["Group"] + [name for name, _, _ in COMBOS],
    )
    whole_run_amp = {}
    for group in TRACE_GROUPS:
        row = [group]
        for name, scheme, victim in COMBOS:
            config = SrcConfig(cache_space=CACHE_SPACE,
                               reclaim=ReclaimConfig(gc_scheme=scheme,
                                                     victim_policy=victim,
                                                     u_max=0.90))
            taps = [StatsDevice(s)
                    for s in build_ssds(es.scale, n=config.n_ssds)]
            cache = build_src(es.scale, config=config, ssds=taps)
            res = run_trace_group(cache, group, es)
            row.append(f"{res.throughput_mb_s:.1f} "
                       f"({res.io_amplification:.2f})")
            if group == "write":
                whole_run_amp[name] = sum(
                    tap.amplification(cache.stats.total_bytes)
                    for tap in taps)
        result.add_row(*row)
    result.notes.append("paper: Sel-GC > S2D on all groups; S2D has "
                        "lower amplification")
    result.notes.append(
        "whole-run SSD-tap amplification, Write group (incl. warm-up): "
        + ", ".join(f"{name} {amp:.2f}"
                    for name, amp in whole_run_amp.items()))
    return result


if __name__ == "__main__":
    print(run().render())
