"""Table 3: impact of the flush command on a raw SSD.

Sequential writes with a flush every 512 KB and 4 KiB random writes
with a flush every 32 requests, against the same workloads without
flushes.  The paper measures 4.1x (sequential) and 8.3x (random)
degradation — the observation that drives SRC's flush-control design.
"""

from __future__ import annotations

from repro.common.units import KIB
from repro.harness.context import (CACHE_SPACE, DEFAULT_SCALE,
                                   ExperimentScale, build_ssds)
from repro.harness.results import ExperimentResult, ratio
from repro.harness.runner import (run_fio_random_write,
                                  run_fio_sequential_write)


def run(es: ExperimentScale = DEFAULT_SCALE) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Table 3",
        title="Impact of flush command on raw SSD throughput (MB/s)",
        columns=["Pattern", "No flush", "flush", "Reduction (x)"],
    )
    ssd = build_ssds(es.scale, n=1)[0]
    seq_free = run_fio_sequential_write(ssd, es, request_size=512 * KIB)
    ssd = build_ssds(es.scale, n=1)[0]
    seq_flush = run_fio_sequential_write(ssd, es, request_size=512 * KIB,
                                         flush_every_bytes=512 * KIB)
    result.add_row("Sequential", seq_free, seq_flush,
                   ratio(seq_free, seq_flush))

    # Random writes target the cache-sized window of the preconditioned
    # device (the paper's §3 setting): confining invalidations keeps the
    # FTL's garbage collection off the critical path, so the flush cost
    # shows as the paper measured it rather than drowning in GC.
    span = int(CACHE_SPACE * es.scale)
    ssd = build_ssds(es.scale, n=1)[0]
    rand_free = run_fio_random_write(ssd, es, span=span)
    ssd = build_ssds(es.scale, n=1)[0]
    rand_flush = run_fio_random_write(ssd, es, span=span, flush_every=32)
    result.add_row("Random", rand_free, rand_flush,
                   ratio(rand_free, rand_flush))
    result.notes.append("paper: sequential 402 -> 96 (4.1x); "
                        "random 249 -> 30 (8.3x)")
    return result


if __name__ == "__main__":
    print(run().render())
