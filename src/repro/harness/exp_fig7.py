"""Figure 7: SRC vs SRC-S2D vs Bcache5 vs Flashcache5.

The headline comparison (§5.4): SRC with default settings against its
S2D-GC variant and against Bcache/Flashcache over a RAID-5 SSD array
(chunk 4 KB, 2 MB buckets/sets, 90% writeback thresholds).  Three
panels: (a) throughput, (b) I/O amplification, (c) hit ratio.

Paper shape: SRC beats Bcache5 by 2.8-3.1x and Flashcache5 by
2.3-2.8x on every group; SRC > SRC-S2D with higher amplification and
hit ratio; Flashcache5 edges Bcache5 on traces (flush cost dominates
Bcache).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.baselines.common import CacheTarget, WritePolicy
from repro.core.config import GcScheme, ReclaimConfig, SrcConfig
from repro.harness.context import (CACHE_SPACE, DEFAULT_SCALE,
                                   ExperimentScale, build_bcache,
                                   build_flashcache, build_src)
from repro.harness.results import ExperimentResult
from repro.harness.runner import TRACE_GROUPS, run_trace_group

SCHEMES = ("SRC", "SRC-S2D", "Bcache5", "Flashcache5")


def _builders(es: ExperimentScale) -> Dict[str, Callable[[], CacheTarget]]:
    return {
        "SRC": lambda: build_src(
            es.scale, SrcConfig(cache_space=CACHE_SPACE)),
        "SRC-S2D": lambda: build_src(
            es.scale, SrcConfig(cache_space=CACHE_SPACE,
                                reclaim=ReclaimConfig(
                                    gc_scheme=GcScheme.S2D))),
        "Bcache5": lambda: build_bcache(
            es.scale, raid_level=5, policy=WritePolicy.WRITE_BACK,
            writeback_percent=0.90),
        "Flashcache5": lambda: build_flashcache(
            es.scale, raid_level=5, policy=WritePolicy.WRITE_BACK,
            dirty_thresh_pct=0.90),
    }


def run(es: ExperimentScale = DEFAULT_SCALE) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 7",
        title="SRC vs existing solutions: MB/s | I/O amp | hit ratio",
        columns=["Scheme"] + list(TRACE_GROUPS),
    )
    builders = _builders(es)
    cells = {scheme: [] for scheme in SCHEMES}
    for group in TRACE_GROUPS:
        for scheme in SCHEMES:
            target = builders[scheme]()
            res = run_trace_group(target, group, es)
            cells[scheme].append(
                f"{res.throughput_mb_s:.1f} | "
                f"{res.io_amplification:.2f} | {res.hit_ratio:.2f}")
    for scheme in SCHEMES:
        result.add_row(scheme, *cells[scheme])
    result.notes.append("paper: SRC 2.8-3.1x over Bcache5, 2.3-2.8x "
                        "over Flashcache5; Sel-GC > S2D with higher "
                        "amp and hit ratio")
    return result


if __name__ == "__main__":
    print(run().render())
