"""Table 2: write-through vs write-back, single-SSD Bcache/Flashcache.

FIO 4 KiB uniform-random writes (iodepth 32, 4 threads) against each
cache solution over one SSD.  The paper measures WB outperforming WT by
4.3x (Bcache) and 17.5x (Flashcache), establishing why SRC adopts
write-back despite its durability risk.
"""

from __future__ import annotations

from repro.baselines.common import WritePolicy
from repro.harness.context import (CACHE_SPACE, DEFAULT_SCALE, ExperimentScale,
                                   build_bcache, build_flashcache)
from repro.harness.results import ExperimentResult, ratio
from repro.harness.runner import run_fio_random_write


def run(es: ExperimentScale = DEFAULT_SCALE) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Table 2",
        title="FIO 4KB random write: write-through vs write-back, "
              "single SSD (MB/s)",
        columns=["Type", "WT", "WB", "Improvement (x)"],
    )
    span = int(CACHE_SPACE * es.scale)
    for name, builder in (("Bcache", build_bcache),
                          ("Flashcache", build_flashcache)):
        rates = {}
        for policy in (WritePolicy.WRITE_THROUGH, WritePolicy.WRITE_BACK):
            target = builder(es.scale, raid_level=-1, policy=policy)
            rates[policy] = run_fio_random_write(target, es, span=span)
        wt = rates[WritePolicy.WRITE_THROUGH]
        wb = rates[WritePolicy.WRITE_BACK]
        result.add_row(name, wt, wb, ratio(wb, wt))
    result.notes.append("paper: Bcache 15.3 -> 65.9 (4.3x); "
                        "Flashcache 5.7 -> 100.3 (17.5x)")
    return result


if __name__ == "__main__":
    print(run().render())
