"""Process-parallel sweep execution.

Every figure and table in the paper is a sweep: a grid of independent
(config, workload) points, each of which builds its own device stack
from a seed and replays a workload against it.  Points share no
mutable state, so they parallelize perfectly across processes — and
because each point is a pure function of its inputs (all randomness
flows from explicit seeds), the results are *identical* whether the
grid runs serially in-process or fanned out over a pool.

:func:`parallel_map` is the single primitive: an ordered ``map`` over
sweep points.  ``jobs <= 1`` short-circuits to a plain in-process list
comprehension — byte-for-byte the serial path, with ambient
observability (the process-local recorder) intact.  ``jobs > 1``
dispatches points to a ``multiprocessing`` pool and reassembles results
in submission order.

Determinism contract
--------------------
Workers inherit nothing mutable from the parent that a sweep point
reads: every point re-seeds its own ``numpy`` Generator and builds
fresh devices.  The only observable difference from a serial run is
that the ambient obs recorder does not span process boundaries, so
``--format json`` telemetry covers in-process work only; the
*results* (the ``ExperimentResult`` rows) are identical.  CI enforces
this with ``scripts/check_parallel_identity.py``.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Iterable, List, Sequence, TypeVar

from repro.common.errors import ConfigError

T = TypeVar("T")
R = TypeVar("R")


def _pool_context() -> mp.context.BaseContext:
    """Prefer fork (cheap, no import re-execution); fall back to spawn.

    Both give identical results — the worker function and its arguments
    are self-contained — fork just avoids re-importing the package per
    worker on platforms that have it.
    """
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 jobs: int = 1) -> List[R]:
    """Ordered map of ``fn`` over ``items`` across ``jobs`` processes.

    ``fn`` must be picklable (a module-level function or a
    ``functools.partial`` of one) and pure with respect to process
    state: every sweep worker in this package derives all randomness
    from seeds carried in its arguments.  Results come back in input
    order regardless of completion order, so a parallel sweep fills an
    :class:`~repro.harness.results.ExperimentResult` exactly like the
    serial loop it replaces.
    """
    if jobs < 0:
        raise ConfigError(f"jobs must be >= 0, got {jobs}")
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    processes = min(jobs, len(items))
    ctx = _pool_context()
    pool = ctx.Pool(processes=processes)
    try:
        # chunksize=1: sweep points are seconds-long, so scheduling
        # granularity beats batching; ordered map keeps determinism.
        # map_async + a finite get() timeout keeps the parent
        # interruptible: a bare pool.map blocks in a C-level wait that
        # swallows KeyboardInterrupt until every worker finishes.
        async_result = pool.map_async(fn, items, chunksize=1)
        while True:
            try:
                results = async_result.get(timeout=1.0)
                break
            except mp.TimeoutError:
                continue
    except BaseException:
        # Worker exception or parent-side interrupt: tear the pool
        # down hard so no live workers outlast the sweep, then
        # re-raise the original failure unchanged.
        pool.terminate()
        pool.join()
        raise
    pool.close()
    pool.join()
    return results


def grid(*axes: Sequence) -> List[tuple]:
    """Row-major cartesian product of sweep axes.

    ``grid(rows, cols)`` yields ``(row, col)`` points in the same order
    the serial nested-for loops iterate them, which is what lets a
    sweep module reshape the flat result list back into table rows.
    """
    points: List[tuple] = [()]
    for axis in axes:
        points = [p + (v,) for p in points for v in axis]
    return points
