"""Figure 1: Bcache and Flashcache over RAID-0/1/4/5 SSD arrays.

FIO 4 KiB uniform-random writes, write-back policy, four SSDs under
each RAID level.  The paper's findings this experiment establishes:
RAID-0 fastest (no redundancy), RAID-1 roughly halved, parity RAID
hurts Flashcache (read-modify-write) more than log-structured Bcache.
"""

from __future__ import annotations

from repro.baselines.common import WritePolicy
from repro.harness.context import (CACHE_SPACE, DEFAULT_SCALE,
                                   ExperimentScale, build_bcache,
                                   build_flashcache)
from repro.harness.results import ExperimentResult
from repro.harness.runner import run_fio_random_write

RAID_LEVELS = (0, 1, 4, 5)


def run(es: ExperimentScale = DEFAULT_SCALE) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 1",
        title="Bcache/Flashcache write-back on RAID levels, FIO 4KB "
              "random write (MB/s)",
        columns=["Cache", "RAID-0", "RAID-1", "RAID-4", "RAID-5"],
    )
    span = int(CACHE_SPACE * es.scale)
    for name, builder in (("Bcache", build_bcache),
                          ("Flashcache", build_flashcache)):
        rates = []
        for level in RAID_LEVELS:
            target = builder(es.scale, raid_level=level,
                             policy=WritePolicy.WRITE_BACK)
            rates.append(run_fio_random_write(target, es, span=span))
        result.add_row(name, *rates)
    result.notes.append("paper shape: RAID-0 best; RAID-1 ~half; "
                        "parity RAID hurts Flashcache more than Bcache")
    return result


if __name__ == "__main__":
    print(run().render())
