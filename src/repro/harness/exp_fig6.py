"""Figure 6: cost-effectiveness of SATA RAID-5 SRCs vs a single NVMe.

Runs the trace groups over SRC configured with each Table 12 product:
the four-drive SATA sets as RAID-5, the NVMe drive alone without
parity.  Reports the four panels: (a) throughput, (b) lifetime days,
(c) MB/s per dollar, (d) lifetime days per dollar.

Paper shape: MLC beats TLC raw; TLC generally wins MB/s/$; MLC always
wins lifetime/$; the NVMe is (slightly) fastest but RAID-5 SATA sets
win lifetime and lifetime/$ — and are not fail-stop.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import SrcConfig
from repro.cost.lifetime import (CostEffectiveness, PAPER_DAILY_WRITES,
                                 flash_waf, lifetime_days)
from repro.cost.products import PRODUCT_ORDER, PRODUCTS, Product
from repro.harness.context import (CACHE_SPACE, DEFAULT_SCALE,
                                   ExperimentScale, build_origin,
                                   build_src, build_ssds)
from repro.harness.results import ExperimentResult
from repro.harness.runner import TRACE_GROUPS, run_trace_group


def _config_for(product: Product) -> SrcConfig:
    if product.n_units == 1:
        return SrcConfig(n_ssds=1, raid_level=0, cache_space=CACHE_SPACE)
    return SrcConfig(n_ssds=product.n_units, raid_level=5,
                     cache_space=CACHE_SPACE)


def measure(product: Product, group: str,
            es: ExperimentScale) -> CostEffectiveness:
    config = _config_for(product)
    ssds = build_ssds(es.scale, n=product.n_units, spec=product.spec)
    cache = build_src(es.scale, config=config, ssds=ssds,
                      origin=build_origin(), spec=product.spec)
    res = run_trace_group(cache, group, es)
    programmed = sum(s.bytes_programmed for s in ssds)
    app_writes = max(1, cache.stats.write_bytes)
    waf = flash_waf(app_writes, programmed)
    life = lifetime_days(product.total_capacity, product.endurance, waf,
                         PAPER_DAILY_WRITES)
    return CostEffectiveness(
        product=product.key, workload=group,
        throughput_mb_s=res.throughput_mb_s,
        set_cost_usd=product.set_cost_usd,
        lifetime_days=life,
    )


def run(es: ExperimentScale = DEFAULT_SCALE) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 6",
        title="Cost-effectiveness: MB/s | days | (MB/s)/$ | days/$",
        columns=["Product"] + list(TRACE_GROUPS),
    )
    cells: Dict[str, List[str]] = {key: [] for key in PRODUCT_ORDER}
    for group in TRACE_GROUPS:
        for key in PRODUCT_ORDER:
            ce = measure(PRODUCTS[key], group, es)
            cells[key].append(
                f"{ce.throughput_mb_s:.0f} | {ce.lifetime_days:.0f} | "
                f"{ce.perf_per_dollar:.3f} | {ce.lifetime_per_dollar:.2f}")
    for key in PRODUCT_ORDER:
        result.add_row(key, *cells[key])
    result.notes.append("paper shape: MLC > TLC raw perf; TLC better "
                        "MB/s/$; MLC better days/$; NVMe fastest but "
                        "worst lifetime/$ and fail-stop")
    return result


if __name__ == "__main__":
    print(run().render())
