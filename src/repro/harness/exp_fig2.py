"""Figure 2: erase group size measurement on the commodity SSD.

Random chunk-sized overwrites at varying chunk sizes and OPS (over-
provisioned space) levels.  The paper's finding — throughput converges
to ~400 MB/s at a 256 MB write unit *independent of OPS*, identifying
256 MB as the drive's erase group size — emerges from the FTL model's
superblock GC rather than being asserted.
"""

from __future__ import annotations

from functools import partial
from typing import List

import numpy as np

from repro.common.units import MIB, PAGE_SIZE, mb_per_sec
from repro.harness.context import DEFAULT_SCALE, ExperimentScale
from repro.harness.parallel import grid, parallel_map
from repro.harness.results import ExperimentResult
from repro.ssd.device import SSDDevice, precondition
from repro.ssd.spec import SATA_MLC_128

# Nominal (unscaled) write-unit sizes; the paper sweeps 4 KB-1 GB, we
# keep the range whose scaled sizes stay distinct.
WRITE_SIZES_MB = (32, 64, 128, 256, 512, 1024)
OPS_LEVELS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


def measure_cell(ops: float, chunk_nominal_mb: int,
                 es: ExperimentScale, passes: float = 2.0) -> float:
    """Throughput of random chunk-sized overwrites at one (OPS, size)."""
    spec = SATA_MLC_128.scaled(es.scale)
    ssd = SSDDevice(spec)
    usable_fraction = 1.0 - ops
    chunk = int(chunk_nominal_mb * MIB * es.scale)
    chunk = max(PAGE_SIZE, chunk - chunk % PAGE_SIZE)
    precondition(ssd, fill_fraction=usable_fraction)
    usable = int(spec.capacity * usable_fraction)
    n_chunks = max(1, usable // chunk)
    rng = np.random.default_rng(es.seed)
    now, total = 0.0, 0
    target = int(passes * usable)
    while total < target:
        offset = int(rng.integers(0, n_chunks)) * chunk
        now = ssd.write(offset, chunk, now)
        total += chunk
    return mb_per_sec(total, now)


def _cell(point: tuple, es: ExperimentScale) -> float:
    """One (OPS, size) sweep point; module-level so pools can pickle it."""
    ops, size = point
    return measure_cell(ops, size, es)


def run(es: ExperimentScale = DEFAULT_SCALE,
        ops_levels=OPS_LEVELS, sizes=WRITE_SIZES_MB,
        jobs: int = 1) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Figure 2",
        title="Erase group size: throughput (MB/s) vs write unit size "
              "across OPS levels",
        columns=["OPS"] + [f"{s}MB" for s in sizes],
    )
    # Each cell builds its own SSD from es.seed: the points are
    # independent, so the grid fans out over processes (--jobs) with
    # results identical to the serial loop.
    cells = parallel_map(partial(_cell, es=es), grid(ops_levels, sizes),
                         jobs=jobs)
    for i, ops in enumerate(ops_levels):
        row: List[object] = [f"{int(ops * 100)}%"]
        row.extend(cells[i * len(sizes):(i + 1) * len(sizes)])
        result.add_row(*row)
    result.notes.append("paper shape: converges to ~400 MB/s at 256MB "
                        "independent of OPS; small units degrade more "
                        "at low OPS")
    return result


if __name__ == "__main__":
    print(run().render())
