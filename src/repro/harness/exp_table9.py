"""Table 9: Parity-for-Clean (PC) vs No-Parity-for-Clean (NPC).

Paper shape: NPC outperforms PC on every group, with the largest gain
(~18%) on the Write group, at slightly lower I/O amplification.
"""

from __future__ import annotations

from repro.block.device import StatsDevice
from repro.core.config import CleanRedundancy, SrcConfig
from repro.harness.context import (CACHE_SPACE, DEFAULT_SCALE,
                                   ExperimentScale, build_src, build_ssds)
from repro.harness.results import ExperimentResult
from repro.harness.runner import TRACE_GROUPS, run_trace_group


def run(es: ExperimentScale = DEFAULT_SCALE) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Table 9",
        title="Clean data redundancy: PC vs NPC, MB/s "
              "(I/O amplification)",
        columns=["Group", "PC", "NPC"],
    )
    whole_run_amp = {}
    for group in TRACE_GROUPS:
        row = [group]
        for mode in (CleanRedundancy.PC, CleanRedundancy.NPC):
            config = SrcConfig(cache_space=CACHE_SPACE,
                               clean_redundancy=mode)
            taps = [StatsDevice(s)
                    for s in build_ssds(es.scale, n=config.n_ssds)]
            cache = build_src(es.scale, config=config, ssds=taps)
            res = run_trace_group(cache, group, es)
            row.append(f"{res.throughput_mb_s:.1f} "
                       f"({res.io_amplification:.2f})")
            if group == "write":
                whole_run_amp[mode.name] = sum(
                    tap.amplification(cache.stats.total_bytes)
                    for tap in taps)
        result.add_row(*row)
    result.notes.append("paper: NPC wins everywhere, most on Write "
                        "(431 -> 508)")
    result.notes.append(
        "whole-run SSD-tap amplification, Write group (incl. warm-up): "
        + ", ".join(f"{name} {amp:.2f}"
                    for name, amp in whole_run_amp.items()))
    return result


if __name__ == "__main__":
    print(run().render())
