"""Tenant volumes over the sharded cluster.

The cluster twin of :class:`repro.tenancy.volume.Volume`: a real
:class:`~repro.block.device.BlockDevice` the tenant mounts, which
shifts volume-relative offsets into the volume's window of the cluster
address space, stamps requests with the tenant tag (so per-shard
tenancy and observability attribute them), and applies an optional
write-rate cap as an admission delay through the shared token bucket.

The window is contiguous in LBAs but **spans shards**: the router's
consistent hash scatters its slabs across every shard in the cluster,
so one tenant's footprint — and one tenant's misbehavior — is spread
evenly rather than concentrated on a single cache.
"""

from __future__ import annotations

from repro.block.device import BlockDevice
from repro.common.throttle import TokenBucket
from repro.common.types import Op, Request
from repro.common.units import MIB, PAGE_SIZE
from repro.obs.events import QosThrottled


class ClusterVolume(BlockDevice):
    """One tenant's namespace over the sharded cluster."""

    def __init__(self, router, tenant: str, base_block: int, blocks: int,
                 max_write_mb_s: float = 0.0, index: int = 0):
        super().__init__(blocks * PAGE_SIZE, name=f"cvol{index}:{tenant}")
        self.router = router
        self.tenant = tenant
        self.base_block = base_block
        self.blocks = blocks
        self._base = base_block * PAGE_SIZE
        rate = max_write_mb_s * MIB
        # Burst of ~10 ms at line rate keeps small bursts unthrottled
        # (same shape as the tenancy QoS volumes).
        self._bucket = TokenBucket(rate, burst_bytes=max(rate * 0.01,
                                                         4 * PAGE_SIZE))
        self.throttle_waits = 0
        self.throttle_wait_s = 0.0

    def _admit(self, req: Request, now: float) -> float:
        if req.op is not Op.WRITE or self._bucket.rate <= 0:
            return now
        begin = self._bucket.ready_time(req.length, now)
        self._bucket.consume(req.length, begin)
        if begin > now:
            self.throttle_waits += 1
            self.throttle_wait_s += begin - now
            if self.router.obs.enabled:
                self.router.obs.emit(QosThrottled(
                    t=now, device=self.name, tenant=self.tenant,
                    waited=begin - now))
        return begin

    def _service(self, req: Request, now: float) -> float:
        if req.op is Op.FLUSH:
            fwd = Request(Op.FLUSH, fua=req.fua, origin=req.origin,
                          tenant=self.tenant)
        else:
            fwd = Request(req.op, req.offset + self._base, req.length,
                          fua=req.fua, origin=req.origin,
                          tenant=self.tenant)
        return self.router.submit(fwd, now)
