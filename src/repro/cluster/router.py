"""The shard router: one block device over N independent SRC caches.

:class:`ShardRouter` multiplexes the origin's LBA space across a set
of independent :class:`~repro.core.src.SrcCache` instances ("shards")
by consistent hashing at *slab* granularity.  Each shard is a complete
SRC stack — its own SSDs, segment layout, GC, repair controller — so a
failure inside one shard is contained to the hash ranges that shard
owns; the rest of the cluster never sees it.  All shards front the
*same* origin device: data placement stays honest (a block's durable
home is unique), which is what makes origin fall-through and dirty
accounting meaningful.

Failure semantics (blast-radius control):

* A failed shard's ranges are served **from the origin** — reads fall
  through, writes write around — rather than being re-homed onto the
  survivors.  Re-homing would stampede the surviving shards' caches
  (admission churn, GC pressure) exactly when the system is already
  degraded; bounded blast radius means the failure costs origin-speed
  service for the failed ranges and *nothing* for the rest.
* Dirty blocks that existed only on the failed shard are counted as
  ``lost_dirty`` at failure time (the same explicit accounting the
  single-cache bypass path keeps) — never silently dropped.
* A spare shard can be attached into the failed slot and warms online;
  the slot's health walks DEGRADED -> REBUILDING -> HEALTHY through
  the same state machine the repair layer uses for SSDs, with MTTR
  accounted by the tracker.

Topology changes (shard add/remove) hand hash ranges off through the
resumable, throttled migration protocol in
:mod:`repro.cluster.migration`; the router pumps the job from its own
service path, so rebalancing only progresses as simulated time
advances and competes with the foreground like any background work.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.block.device import BlockDevice
from repro.common.chunks import (NO_TENANT, OP_WRITE, ORIGIN_FG,
                                 request_from_row)
from repro.common.errors import ConfigError, ReproError
from repro.common.throttle import ForegroundGuard, TokenBucket
from repro.common.types import IoOrigin, Op, Request
from repro.common.units import PAGE_SIZE
from repro.core.arrays import grow_to
from repro.obs.events import (MigrationProgress, RouterDegraded,
                              ShardHealthTransition)
from repro.repair.health import DeviceHealth

from .config import ClusterConfig
from .hashring import HashRing
from .health import ShardHealthTracker
from .migration import (MigrationError, MigrationJob, MigrationLedger,
                        RangeMove)
from .volume import ClusterVolume

# States in which a shard slot serves I/O.  REBUILDING serves: an
# attached spare warms through ordinary misses while it fills.
_SERVING = (DeviceHealth.HEALTHY, DeviceHealth.REBUILDING)

_EMPTY_TIMES = np.empty(0, dtype=np.float64)

# Same scalar/vector crossover the SRC core and the FTL use.
SCALAR_THRESHOLD = 32


@dataclass
class ClusterStats:
    """Router-level counters (shard stats live on the shards)."""

    routed_reads: int = 0
    routed_writes: int = 0
    straddled_requests: int = 0      # requests split across owners
    fallthrough_reads: int = 0       # served from origin: owner down
    write_arounds: int = 0           # written to origin: owner down
    lost_dirty: int = 0              # acked dirty lost to shard failures
    shard_failures: int = 0
    spares_attached: int = 0
    migrations_started: int = 0
    migrations_completed: int = 0
    migration_ranges: int = 0
    migration_blocks: int = 0
    migration_dirty_blocks: int = 0
    migration_throttle_defers: int = 0
    migration_guard_defers: int = 0
    migration_catchup_passes: int = 0
    migration_forced_finals: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterStats":
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


class ShardRouter(BlockDevice):
    """Consistent-hash front door over independent SRC shard caches."""

    def __init__(self, shards: List, origin: BlockDevice,
                 config: ClusterConfig = ClusterConfig(),
                 ledger: Optional[MigrationLedger] = None,
                 name: str = "cluster"):
        if not shards:
            raise ConfigError("need at least one shard")
        if len(shards) != config.n_shards:
            raise ConfigError(
                f"config expects {config.n_shards} shards, got {len(shards)}")
        for shard in shards:
            if shard.origin is not origin:
                raise ConfigError(
                    f"shard {shard.name} fronts a different origin; all "
                    "shards must share the router's origin device")
        super().__init__(origin.size, name)
        self.config = config
        self.origin = origin
        self.shards: Dict[int, object] = dict(enumerate(shards))
        self.ring = HashRing(vnodes=config.vnodes, seed=config.hash_seed)
        for slot in self.shards:
            self.ring.add(slot)   # initial population: nothing to move
        self.health = ShardHealthTracker(len(shards), device=name)
        self.clusterstats = ClusterStats()
        self.ledger = ledger if ledger is not None else MigrationLedger()
        self._bucket = TokenBucket(
            config.migration_rate,
            burst_bytes=2 * config.migration_unit_blocks * PAGE_SIZE)
        self._guard = ForegroundGuard(config.migration_fg_p99)
        self._migration: Optional[MigrationJob] = None
        self._overrides: List[RangeMove] = []
        self._spare_ready: Dict[int, float] = {}
        # Tenant volumes spanning the cluster (repro.cluster.volume).
        self.volumes: Dict[str, object] = {}
        self._alloc_cursor = 0
        # slab -> owning slot, filled lazily by the batch path (the
        # blake2b ring hash cannot vectorize, but ownership per slab is
        # stable between topology changes).  -1 = not yet computed;
        # dropped whole on any event that can move an arc.
        self._owner_cache: Optional[np.ndarray] = None

    # ==================================================================
    # routing
    # ==================================================================
    def slot_serving(self, slot: int) -> bool:
        return self.health.state(slot) in _SERVING

    def owner_slot(self, block: int) -> int:
        """The slot that owns ``block``'s slab right now.

        Pending (uncommitted) migration ranges still belong to their
        source — ownership flips per range at commit, never per block.
        While no ranges are pending, lookups go through the slab owner
        cache (a blake2b per page otherwise dominates the routing
        cost); overrides bypass the cache entirely, and every event
        that can move an arc drops it.
        """
        slab = block // self.config.slab_blocks
        if not self._overrides:
            cache = self._owner_cache
            if cache is not None and slab < cache.shape[0]:
                slot = cache[slab]
                if slot >= 0:
                    return int(slot)
            owner = self.ring.owner_of_hash(self.ring.key_hash(slab))
            if cache is None:
                cache = np.full(max(slab + 1, 1024), -1, dtype=np.int32)
                self._owner_cache = cache
            elif slab >= cache.shape[0]:
                cache = grow_to(cache, slab + 1, fill=-1)
                self._owner_cache = cache
            cache[slab] = owner
            return owner
        point = self.ring.key_hash(slab)
        for move in self._overrides:
            if move.contains(point):
                return move.source
        return self.ring.owner_of_hash(point)

    def _split_runs(self, req: Request) -> List:
        """Split a request into (slot, start_block, n_blocks) runs."""
        runs = []
        start = prev_slot = None
        count = 0
        for block in req.pages():
            slot = self.owner_slot(block)
            if slot == prev_slot:
                count += 1
                continue
            if start is not None:
                runs.append((prev_slot, start, count))
            start, prev_slot, count = block, slot, 1
        if start is not None:
            runs.append((prev_slot, start, count))
        if len(runs) > 1:
            self.clusterstats.straddled_requests += 1
        return runs

    # ==================================================================
    # service path
    # ==================================================================
    def _service(self, req: Request, now: float) -> float:
        self._tick(now)
        if req.op is Op.FLUSH:
            return self._flush_all(req, now)
        if req.op is Op.TRIM:
            # Broadcast: a pending migration may have left a stale copy
            # of a trimmed block on a range's future owner, and trims
            # are rare RAM-only bookkeeping on non-owners.
            end = now
            for slot, shard in self.shards.items():
                if self.slot_serving(slot):
                    end = max(end, shard.submit(Request(
                        Op.TRIM, req.offset, req.length, fua=req.fua,
                        origin=req.origin, tenant=req.tenant), now))
            return end
        end = now
        for slot, start, count in self._split_runs(req):
            sub = Request(req.op, start * PAGE_SIZE, count * PAGE_SIZE,
                          fua=req.fua, origin=req.origin, tenant=req.tenant)
            if self.slot_serving(slot):
                if req.op is Op.READ:
                    self.clusterstats.routed_reads += count
                else:
                    self.clusterstats.routed_writes += count
                end = max(end, self.shards[slot].submit(sub, now))
            elif req.op is Op.READ:
                self.clusterstats.fallthrough_reads += count
                end = max(end, self.origin.submit(sub, now))
            else:
                self.clusterstats.write_arounds += count
                end = max(end, self.origin.submit(sub, now))
        if req.origin is IoOrigin.FOREGROUND:
            self._guard.observe(end - now)
        return end

    # ==================================================================
    # batched submission (repro.sim.engine batch mode)
    # ==================================================================
    def _owners_of(self, slabs: np.ndarray) -> np.ndarray:
        """Vector slab -> slot lookup through the lazy owner cache.

        Only valid while no migration overrides are pending (the batch
        gates guarantee that); misses run the scalar ring lookup once
        per distinct slab and stay cached until the topology moves.
        """
        cache = self._owner_cache
        top = int(slabs.max()) + 1
        if cache is None:
            cache = np.full(max(top, 1024), -1, dtype=np.int32)
            self._owner_cache = cache
        elif top > cache.shape[0]:
            cache = grow_to(cache, top, fill=-1)
            self._owner_cache = cache
        vals = cache[slabs]
        if (vals < 0).any():
            ring = self.ring
            for slab in np.unique(slabs[vals < 0]).tolist():
                cache[slab] = ring.owner_of_hash(ring.key_hash(slab))
            vals = cache[slabs]
        return vals

    def _drop_owner_cache(self) -> None:
        self._owner_cache = None

    def submit_chunk(self, rows: np.ndarray, start: float,
                     think_time: float, deadline: float,
                     limit: int) -> Tuple[np.ndarray, np.ndarray, int]:
        """Vectorized closed-loop prefix service (batch engine hook).

        Delegates a same-owner run of conformant rows (single-page,
        page-aligned, untenanted foreground writes) to the owning
        shard's own ``submit_chunk``, replicating the router-level
        accounting (device stats, routed counters, foreground-guard
        observations) the scalar ``submit`` path performs per request.
        Declines — leaving every row to the scalar oracle — whenever
        any cluster-level side channel is live: a migration (override
        ranges re-route mid-chunk), a warming spare (its completion is
        clocked by ``_tick``), or an attached observer.
        """
        n_total = rows.shape[0]
        if (n_total == 0 or self._migration is not None or self._overrides
                or self._spare_ready or self.obs.enabled):
            return _EMPTY_TIMES, _EMPTY_TIMES, 0
        offsets = rows["offset"]
        # Bounded scan, widened geometrically only while the whole
        # window is one conformant same-owner run: consistent hashing
        # scatters consecutive slabs across shards, so most runs are a
        # handful of rows and one 64-row pass decides them.
        scan = 64 if n_total > 64 else n_total
        slab_blocks = self.config.slab_blocks
        while True:
            offs = offsets[:scan]
            conf = ((rows["op"][:scan] == OP_WRITE)
                    & (rows["length"][:scan] == PAGE_SIZE)
                    & (rows["origin"][:scan] == ORIGIN_FG)
                    & (rows["tenant"][:scan] == NO_TENANT)
                    & (offs % PAGE_SIZE == 0)
                    & (offs + PAGE_SIZE <= self.size))
            nonconf = np.nonzero(~conf)[0]
            n_conf = int(nonconf[0]) if nonconf.shape[0] else scan
            if n_conf == 0:
                return _EMPTY_TIMES, _EMPTY_TIMES, 0
            owners = self._owners_of(offs[:n_conf] // PAGE_SIZE
                                     // slab_blocks)
            slot = int(owners[0])
            other = np.nonzero(owners != slot)[0]
            n_run = int(other[0]) if other.shape[0] else n_conf
            if n_run < scan or scan == n_total:
                break
            scan = min(scan * 8, n_total)
        if n_run < SCALAR_THRESHOLD:
            # Runs this short (consistent hashing scatters consecutive
            # slabs) are not worth a vector delegation per owner; serve
            # the scanned window scalar right here, crossing owner
            # boundaries, with the exact per-request accounting the
            # scalar submit path performs.
            slot_serving = self.slot_serving
            shards = self.shards
            stats_record = self.stats.record
            cs = self.clusterstats
            guard = self._guard if self._guard.enabled else None
            owners_list = owners.tolist()
            lim = limit if limit else n_conf
            issue_s = np.empty(n_conf, dtype=np.float64)
            done_s = np.empty(n_conf, dtype=np.float64)
            t = start
            k = 0
            while k < n_conf and k < lim and t < deadline:
                slot_k = owners_list[k]
                if not slot_serving(slot_k):
                    break   # write-around row: engine fallback owns it
                req = request_from_row(rows[k])
                end = shards[slot_k].submit(req, t)
                stats_record(req)
                cs.routed_writes += 1
                if guard is not None:
                    guard.observe(end - t)
                issue_s[k] = t
                done_s[k] = end
                t = end + think_time
                k += 1
            return issue_s[:k], done_s[:k], k
        if not self.slot_serving(slot):
            return _EMPTY_TIMES, _EMPTY_TIMES, 0
        shard_chunk = getattr(self.shards[slot], "submit_chunk", None)
        if shard_chunk is None:
            return _EMPTY_TIMES, _EMPTY_TIMES, 0
        issue_t, done_t, n = shard_chunk(rows[:n_run], start, think_time,
                                         deadline, limit)
        if n:
            served = rows[:n]
            self.stats.record_chunk(served["op"], served["length"],
                                    served["origin"])
            self.clusterstats.routed_writes += n
            if self._guard.enabled:
                observe = self._guard.observe
                for latency in (done_t - issue_t).tolist():
                    observe(latency)
        return issue_t, done_t, n

    def _flush_all(self, req: Request, now: float) -> float:
        end = now
        for slot, shard in self.shards.items():
            if self.slot_serving(slot):
                end = max(end, shard.submit(Request(
                    Op.FLUSH, fua=req.fua, origin=req.origin,
                    tenant=req.tenant), now))
        if not all(self.slot_serving(s) for s in self.shards):
            # Write-around data lives on the origin; flush it too.
            end = max(end, self.origin.submit(
                Request(Op.FLUSH, origin=req.origin), now))
        return end

    # ==================================================================
    # background progress (pumped from the service path)
    # ==================================================================
    def _tick(self, now: float) -> None:
        self._complete_warms(now)
        if self._migration is not None:
            self._migration.pump(now)
            if self._migration.done:
                self._finish_migration(now)

    def _complete_warms(self, now: float) -> None:
        for slot, ready in list(self._spare_ready.items()):
            if now >= ready:
                del self._spare_ready[slot]
                record = self.health.transition(
                    slot, DeviceHealth.HEALTHY, now, reason="spare-warmed")
                self._emit_health(record)

    def pump(self, now: float) -> None:
        """Public pump for idle-time progress (tests, experiments)."""
        self._tick(now)

    # ==================================================================
    # topology changes
    # ==================================================================
    def add_shard(self, shard, now: float) -> int:
        """Attach a new shard online; rebalancing starts immediately."""
        if self._migration is not None:
            raise MigrationError("one topology change at a time")
        if shard.origin is not self.origin:
            raise ConfigError("new shard must share the cluster origin")
        slot = self.health.add_slot()
        self.shards[slot] = shard
        self._drop_owner_cache()
        moves = [RangeMove(lo, hi, source=old, target=slot)
                 for lo, hi, old in self.ring.add(slot)]
        self._start_migration("add", slot, moves, now)
        return slot

    def remove_shard(self, slot: int, now: float) -> None:
        """Drain ``slot`` and retire it once its ranges are handed off."""
        if self._migration is not None:
            raise MigrationError("one topology change at a time")
        if slot not in self.shards:
            raise ConfigError(f"no shard in slot {slot}")
        if not self.slot_serving(slot):
            raise MigrationError(
                f"slot {slot} is not serving; replace it, do not drain it")
        serving_others = [s for s in self.shards
                         if s != slot and s in self.ring]
        if not serving_others:
            raise MigrationError("cannot remove the last shard")
        moves = [RangeMove(lo, hi, source=slot, target=new)
                 for lo, hi, new in self.ring.remove(slot)]
        self._drop_owner_cache()
        self._start_migration("remove", slot, moves, now)

    def _start_migration(self, op: str, slot: int, moves: List[RangeMove],
                         now: float, kind: str = "start") -> None:
        self.ledger.begin(op, slot, moves)
        self._resume_migration(now, kind=kind)

    def _resume_migration(self, now: float, kind: str) -> None:
        """Build the job for the ledger's open intent (fresh or resumed)."""
        self._drop_owner_cache()
        self._overrides = self.ledger.pending_moves()
        self._migration = MigrationJob(
            self, self._overrides, self.config, self._bucket, self._guard,
            kind=kind)
        self.clusterstats.migrations_started += 1
        if self.obs.enabled:
            total = len(self.ledger.moves)
            self.obs.emit(MigrationProgress(
                t=now, device=self.name, phase=kind,
                done=total - len(self._overrides), total=total))
        if self._migration.done:   # nothing pending (e.g. first shard)
            self._finish_migration(now)

    def commit_move(self, move: RangeMove, now: float) -> None:
        """Durable ownership flip for one range (called by the job)."""
        self.ledger.record(move)
        self._overrides.remove(move)
        job = self._migration
        self.clusterstats.migration_ranges += 1
        if self.obs.enabled and job is not None:
            self.obs.emit(MigrationProgress(
                t=now, device=self.name, phase="range",
                done=len(self.ledger.moves) - len(self._overrides),
                total=len(self.ledger.moves),
                blocks=job.stats.blocks_copied,
                dirty_blocks=job.stats.dirty_blocks_copied))

    def _finish_migration(self, now: float) -> None:
        self._drop_owner_cache()
        job = self._migration
        self._migration = None
        self._overrides = []
        op, slot = self.ledger.op, self.ledger.slot
        self.ledger.complete()
        if op == "remove":
            self.shards.pop(slot, None)
            record = self.health.transition(
                slot, DeviceHealth.BYPASS, now, reason="removed")
            self._emit_health(record)
        stats = job.stats
        cs = self.clusterstats
        cs.migrations_completed += 1
        cs.migration_blocks += stats.blocks_copied
        cs.migration_dirty_blocks += stats.dirty_blocks_copied
        cs.migration_throttle_defers += stats.throttle_defers
        cs.migration_guard_defers += stats.guard_defers
        cs.migration_catchup_passes += stats.catchup_passes
        cs.migration_forced_finals += stats.forced_finals
        if self.obs.enabled:
            self.obs.emit(MigrationProgress(
                t=now, device=self.name, phase="done",
                done=stats.ranges_done, total=stats.ranges_total,
                blocks=stats.blocks_copied,
                dirty_blocks=stats.dirty_blocks_copied))

    # ==================================================================
    # failure and repair
    # ==================================================================
    def _emit_health(self, record) -> None:
        if self.obs.enabled:
            self.obs.emit(ShardHealthTransition(
                t=record.t, device=self.name, shard=record.member,
                old=record.old.value, new=record.new.value,
                reason=record.reason))

    def fail_shard(self, slot: int, now: float,
                   reason: str = "fail-stop") -> int:
        """Mark ``slot`` failed; its ranges degrade to origin service.

        Returns the number of acknowledged-dirty blocks that existed
        only on the failed shard — lost, and accounted, exactly like
        the single-cache bypass path's ``bypass_lost_dirty``.
        """
        shard = self.shards.get(slot)
        if shard is None:
            raise ConfigError(f"no shard in slot {slot}")
        record = self.health.transition(
            slot, DeviceHealth.DEGRADED, now, reason=reason)
        self._emit_health(record)
        self._spare_ready.pop(slot, None)
        lost = shard.mapping.dirty_count + len(shard.dirty_buf)
        self.clusterstats.lost_dirty += lost
        self.clusterstats.shard_failures += 1
        if self.obs.enabled:
            self.obs.emit(RouterDegraded(
                t=now, device=self.name, shard=slot, reason=reason,
                lost_dirty=lost, ranges=self.config.vnodes))
        return lost

    def attach_spare(self, spare, slot: int, now: float) -> None:
        """Put an empty spare shard into a DEGRADED slot and warm it."""
        if self.health.state(slot) is not DeviceHealth.DEGRADED:
            raise ReproError(
                f"slot {slot} is {self.health.state(slot).value}; spares "
                "attach to degraded slots")
        if spare.origin is not self.origin:
            raise ConfigError("spare shard must share the cluster origin")
        self.shards[slot] = spare
        record = self.health.transition(
            slot, DeviceHealth.REBUILDING, now, reason="spare-attached")
        self._emit_health(record)
        self.clusterstats.spares_attached += 1
        self._spare_ready[slot] = now + self.config.spare_warm_s
        self._complete_warms(now)

    # ==================================================================
    # crash recovery
    # ==================================================================
    def recover_interrupted(self, now: float, new_shard=None) -> None:
        """Resume after a power cut: re-open the ledger's intent, then
        sweep every shard so each block has exactly one owner.

        Build the router over the *pre-change* topology (for an ``add``
        the half-attached shard is passed as ``new_shard``; for a
        ``remove`` the draining shard is still in its slot), with the
        surviving :class:`MigrationLedger`.  Ranges the ledger recorded
        stay flipped; everything else routes to its source again and
        the copy restarts idempotently.
        """
        if self.ledger.active:
            op, slot = self.ledger.op, self.ledger.slot
            if op == "add":
                if new_shard is None:
                    raise MigrationError(
                        "resuming an interrupted add needs the new shard")
                if new_shard.origin is not self.origin:
                    raise ConfigError(
                        "new shard must share the cluster origin")
                got = self.health.add_slot()
                if got != slot:
                    raise MigrationError(
                        f"ledger intent adds slot {slot} but the next "
                        f"free slot is {got}; wrong base topology")
                self.shards[slot] = new_shard
                self.ring.add(slot)
            else:
                if slot not in self.shards:
                    raise MigrationError(
                        f"ledger intent removes slot {slot} which is not "
                        "attached; wrong base topology")
                self.ring.remove(slot)
            self._resume_migration(now, kind="resume")
        self.reconcile(now)

    def reconcile(self, now: float) -> int:
        """Evict every cached block from any shard that is not its
        owner (returns the eviction count).

        Safe unconditionally: a block's owner holds it durably (a
        committed flip implies the target flushed) or the block is
        clean and the origin re-fills it, so dropping foreign copies
        never loses data — it only removes double-ownership left by an
        interrupted hand-off.
        """
        evicted = 0
        for slot, shard in self.shards.items():
            if not self.slot_serving(slot):
                continue
            for lba, _dirty in shard.cached_blocks():
                if self.owner_slot(lba) != slot:
                    if shard.evict_block(lba):
                        evicted += 1
        return evicted

    # ==================================================================
    # tenant volumes
    # ==================================================================
    def create_volume(self, tenant: str, size: int,
                      max_write_mb_s: float = 0.0):
        """Carve a tenant volume out of the cluster address space.

        The window is contiguous in LBA space but *spans shards*: the
        consistent hash scatters its slabs across the whole cluster.
        """
        if tenant in self.volumes:
            raise ConfigError(f"volume for tenant {tenant!r} exists")
        blocks = (size + PAGE_SIZE - 1) // PAGE_SIZE
        if blocks < 1:
            raise ConfigError("volume size must be at least one block")
        if (self._alloc_cursor + blocks) * PAGE_SIZE > self.size:
            raise ConfigError(
                f"volume {tenant!r} ({blocks} blocks) does not fit; "
                f"cursor at {self._alloc_cursor}")
        volume = ClusterVolume(self, tenant, self._alloc_cursor, blocks,
                               max_write_mb_s=max_write_mb_s,
                               index=len(self.volumes))
        self._alloc_cursor += blocks
        self.volumes[tenant] = volume
        return volume

    # ==================================================================
    # rollups
    # ==================================================================
    def serving_slots(self) -> List[int]:
        return [s for s in self.shards if self.slot_serving(s)]

    def cluster_dirty(self) -> int:
        """Dirty blocks across every serving shard (consistency checks)."""
        return sum(shard.mapping.dirty_count + len(shard.dirty_buf)
                   for slot, shard in self.shards.items()
                   if self.slot_serving(slot))
