"""Sharded SRC cluster: consistent-hash routing over independent
SRC caches, with shard failover, resumable rebalancing and
blast-radius control (docs/cluster.md).
"""

from .config import ClusterConfig
from .hashring import HashRing, arc_contains
from .health import ShardHealthTracker
from .migration import (MigrationError, MigrationJob, MigrationLedger,
                        RangeMove)
from .router import ClusterStats, ShardRouter
from .volume import ClusterVolume

__all__ = [
    "ClusterConfig",
    "ClusterStats",
    "ClusterVolume",
    "HashRing",
    "MigrationError",
    "MigrationJob",
    "MigrationLedger",
    "RangeMove",
    "ShardHealthTracker",
    "ShardRouter",
    "arc_contains",
]
