"""Cluster-layer configuration (:mod:`repro.cluster`).

One frozen dataclass in the same idiom as the :class:`SrcConfig`
policy groups: validated in ``__post_init__``, ``as_dict`` /
``from_dict`` for telemetry round-trips.  The knobs split into three
concerns:

* **routing geometry** — ``n_shards``, ``vnodes`` (ring points per
  shard), ``slab_blocks`` (the consistent-hash granularity: requests
  are routed per *slab*, a run of contiguous blocks, so multi-block
  requests rarely straddle shards and sequential locality survives
  sharding);
* **migration** — the token-bucket byte rate, the foreground-p99
  guard, the per-pump copy batch, and the catch-up bound that keeps a
  rebalance from chasing a hot writer forever;
* **failover** — how long an attached spare stays REBUILDING before
  the router calls its slot HEALTHY again.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.common.errors import ConfigError
from repro.common.units import MIB


@dataclass(frozen=True)
class ClusterConfig:
    """Policy for a :class:`~repro.cluster.router.ShardRouter`."""

    n_shards: int = 4                   # initial shard slots
    vnodes: int = 32                    # ring points per shard
    slab_blocks: int = 256              # routing granularity (1 MiB slabs)
    hash_seed: int = 1                  # ring placement seed

    migration_rate: float = 64 * MIB    # copy bytes/s budget; 0 = unlimited
    migration_fg_p99: float = 0.0       # pause migration while foreground
                                        # rolling p99 exceeds this (s); 0 off
    migration_unit_blocks: int = 64     # blocks copied per pump step
    migrate_clean: bool = True          # copy clean blocks too (False drops
                                        # them; the origin re-fills on miss)
    max_catchup_passes: int = 8         # re-walks chasing concurrent writes
                                        # before the final forced copy
    spare_warm_s: float = 0.0           # REBUILDING -> HEALTHY delay after
                                        # a spare shard is attached

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        if self.vnodes < 1:
            raise ConfigError("vnodes must be >= 1")
        if self.slab_blocks < 1:
            raise ConfigError("slab_blocks must be >= 1")
        if self.migration_rate < 0:
            raise ConfigError("migration_rate must be >= 0 (0 = unlimited)")
        if self.migration_fg_p99 < 0 or self.spare_warm_s < 0:
            raise ConfigError("migration_fg_p99 and spare_warm_s must be "
                              ">= 0 (0 disables)")
        if self.migration_unit_blocks < 1:
            raise ConfigError("migration_unit_blocks must be >= 1")
        if self.max_catchup_passes < 0:
            raise ConfigError("max_catchup_passes must be >= 0")

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterConfig":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})
