"""Consistent-hash ring mapping routing slabs to shard slots.

Classic ring with virtual nodes: every shard slot owns ``vnodes``
deterministic points on a 64-bit circle, and a slab belongs to the
first point clockwise from its hash.  Adding or removing a slot moves
only the arcs adjacent to that slot's points — ``add`` / ``remove``
return exactly those arcs as ``(lo, hi, other_slot)`` triples so the
migration layer knows what re-homes and from/to where, without any
global reshuffle.

Hashes come from ``blake2b`` (stable across processes and Python
versions — ``hash()`` is salted and useless here), so the same seed
always produces the same placement: a cluster rebuilt after a power
cut recomputes identical ownership, which is what makes the migration
hand-off ledger meaningful.

Arcs are half-open ``(lo, hi]`` intervals on the circle and may wrap
through zero; :func:`arc_contains` is the one membership test every
layer shares.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import Dict, List, Tuple

from repro.common.errors import ConfigError

RING_BITS = 64


def arc_contains(lo: int, hi: int, point: int) -> bool:
    """Whether ``point`` lies on the half-open arc ``(lo, hi]``.

    ``lo == hi`` denotes the full circle (a single-point ring owns
    everything), matching how the arc of a lone vnode degenerates.
    """
    if lo == hi:
        return True
    if lo < hi:
        return lo < point <= hi
    return point > lo or point <= hi


class HashRing:
    """Consistent-hash ring over integer shard slots."""

    def __init__(self, vnodes: int = 32, seed: int = 1):
        if vnodes < 1:
            raise ConfigError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.seed = seed
        self._shards: Dict[int, List[int]] = {}
        self._points: List[Tuple[int, int]] = []   # sorted (hash, slot)

    # ------------------------------------------------------------------
    def _hash(self, key: str) -> int:
        digest = hashlib.blake2b(key.encode("ascii"),
                                 digest_size=RING_BITS // 8).digest()
        return int.from_bytes(digest, "big")

    def key_hash(self, slab: int) -> int:
        """Ring position of one routing slab."""
        return self._hash(f"{self.seed}:slab:{slab}")

    def _shard_points(self, slot: int) -> List[int]:
        return [self._hash(f"{self.seed}:shard:{slot}:{v}")
                for v in range(self.vnodes)]

    def _rebuild(self) -> None:
        self._points = sorted(
            (h, slot) for slot, hashes in self._shards.items()
            for h in hashes)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, slot: int) -> bool:
        return slot in self._shards

    def slots(self) -> List[int]:
        return sorted(self._shards)

    def owner_of_hash(self, point: int) -> int:
        """The slot owning ``point``: first ring point clockwise."""
        if not self._points:
            raise ConfigError("hash ring is empty")
        index = bisect_left(self._points, (point, -1))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def owner(self, slab: int) -> int:
        return self.owner_of_hash(self.key_hash(slab))

    def _predecessor(self, point: int) -> int:
        """The ring point strictly counter-clockwise of ``point``."""
        index = bisect_left(self._points, (point, -1)) - 1
        return self._points[index][0]   # index -1 wraps, as intended

    # ------------------------------------------------------------------
    def add(self, slot: int) -> List[Tuple[int, int, int]]:
        """Insert ``slot``; return the arcs it steals.

        Each returned ``(lo, hi, old_owner)`` is an arc now owned by
        ``slot`` that ``old_owner`` held before.  Empty for the first
        slot (nothing existed to steal from).
        """
        if slot in self._shards:
            raise ConfigError(f"shard slot {slot} already on the ring")
        points = self._shard_points(slot)
        was_empty = not self._points
        old_owners = {} if was_empty else {
            h: self.owner_of_hash(h) for h in points}
        self._shards[slot] = points
        self._rebuild()
        if was_empty:
            return []
        moves = []
        for h in points:
            # The arc (pred, h] contains no other point of the new
            # ring, so its previous owner is constant: the old-ring
            # successor of h.
            moves.append((self._predecessor(h), h, old_owners[h]))
        return moves

    def remove(self, slot: int) -> List[Tuple[int, int, int]]:
        """Remove ``slot``; return the arcs it cedes.

        Each returned ``(lo, hi, new_owner)`` is an arc ``slot`` owned
        that ``new_owner`` inherits.  Removing the last slot empties
        the ring and cedes nothing (there is nowhere to move data to).
        """
        if slot not in self._shards:
            raise ConfigError(f"shard slot {slot} not on the ring")
        points = self._shards[slot]
        arcs = [(self._predecessor(h), h) for h in points]
        del self._shards[slot]
        self._rebuild()
        if not self._points:
            return []
        moves = []
        for lo, hi in arcs:
            new_owner = self.owner_of_hash(hi)
            moves.append((lo, hi, new_owner))
        return moves
