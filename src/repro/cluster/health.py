"""Per-shard health, reusing the device-health state machine.

A shard slot moves through exactly the vocabulary
:class:`~repro.repair.health.DeviceHealth` defines for array members:
HEALTHY while serving, DEGRADED when its cache stack fails (the router
serves that hash range from the origin), REBUILDING while an attached
spare warms the slot, and back to HEALTHY.  FAILED and BYPASS keep
their terminal meanings — a slot the cluster has written off.

Reusing :class:`~repro.repair.health.HealthTracker` wholesale buys the
legality checks, transition history, and MTTR / degraded-window
accounting for free; the only cluster-specific need is that shard
count *grows* when a shard is added online, hence :meth:`add_slot`.
"""

from __future__ import annotations

from repro.repair.health import (DeviceHealth, HealthTracker,
                                 RepairStateError, Transition)

__all__ = ["DeviceHealth", "RepairStateError", "ShardHealthTracker",
           "Transition"]


class ShardHealthTracker(HealthTracker):
    """A :class:`HealthTracker` whose slot count can grow online."""

    def add_slot(self) -> int:
        """Append a new HEALTHY slot; returns its index."""
        self._states.append(DeviceHealth.HEALTHY)
        return len(self._states) - 1
