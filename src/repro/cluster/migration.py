"""Resumable, throttled hand-off of hash ranges between shards.

A topology change (shard add/remove) re-homes a set of ring arcs.  The
migration layer moves the cached blocks of each arc from its current
data owner to its new ring owner without losing a single acknowledged
dirty block, without a stop-the-world pause, and in a way that a power
cut can interrupt at any device write and still leave every block with
exactly one owner after recovery.

The protocol per range, modeled on the rebuild job in
:mod:`repro.repair.rebuild` (unit-granular work list, token-bucket
pacing, foreground-p99 back-off, caller-driven pump):

1. **Intent** — the topology op and its full move list are written to
   the :class:`MigrationLedger` *before* any data moves.  The ledger
   models a durable journal (same convention as the metadata store:
   durability is modeled, power cuts only fire on data-device writes),
   so recovery always knows which ranges were mid-flight.
2. **Copy** — walk a snapshot of the source's cached blocks in the
   range and admit each into the target, dirty state preserved.  The
   copy rate rides the shared token bucket and defers while the
   foreground guard reports hot.
3. **Catch-up** — re-walk the range; any block whose write-version
   changed (or appeared) since its copy is copied again.  Bounded by
   ``max_catchup_passes``; the final pass copies the remainder inside
   one pump step, which the single-threaded simulation cannot
   interleave writes into.
4. **Seal & flip** — ``target.handle_flush`` makes the copies durable,
   *then* the range is recorded in the ledger.  Ordering is the safety
   argument: a cut during the flush leaves the range unrecorded, so it
   still routes to the source, which has evicted nothing yet.
5. **Evict** — the source forgets the range.  RAM-only bookkeeping:
   it cannot be interrupted by a device fault.

Routing consults the pending (uncommitted) moves first — an in-flight
range keeps routing to its source — so ownership flips atomically per
range at step 4, never per block.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.common.errors import ReproError
from repro.common.throttle import ForegroundGuard, TokenBucket
from repro.common.units import PAGE_SIZE

from .config import ClusterConfig
from .hashring import arc_contains


class MigrationError(ReproError):
    """Cluster migration protocol violation."""


@dataclass(frozen=True)
class RangeMove:
    """One ring arc changing data owner: ``(lo, hi]`` source -> target."""

    lo: int
    hi: int
    source: int
    target: int

    @property
    def key(self) -> Tuple[int, int]:
        return (self.lo, self.hi)

    def contains(self, point: int) -> bool:
        return arc_contains(self.lo, self.hi, point)


class MigrationLedger:
    """Durable intent + commit journal for topology changes.

    Holds at most one open intent (the active topology op with its full
    move list) and the set of its committed ranges.  Modeled durable:
    the simulation's power cuts fire only on data-device writes, so the
    ledger object survives a cut the way the metadata store does, and
    recovery reads it to learn which ranges were still in flight.
    """

    def __init__(self) -> None:
        self.op: Optional[str] = None        # "add" / "remove"
        self.slot: Optional[int] = None
        self.moves: List[RangeMove] = []
        self._committed: Set[Tuple[int, int]] = set()

    @property
    def active(self) -> bool:
        return self.op is not None

    def begin(self, op: str, slot: int, moves: List[RangeMove]) -> None:
        if self.active:
            raise MigrationError(
                f"ledger already holds an open {self.op} intent")
        self.op = op
        self.slot = slot
        self.moves = list(moves)
        self._committed = set()

    def record(self, move: RangeMove) -> None:
        """Commit one range: its ownership flip is now durable."""
        if not self.active:
            raise MigrationError("record() with no open intent")
        self._committed.add(move.key)

    def committed(self, move: RangeMove) -> bool:
        return move.key in self._committed

    def pending_moves(self) -> List[RangeMove]:
        return [m for m in self.moves if m.key not in self._committed]

    def complete(self) -> None:
        """Close the intent once every range is committed."""
        if not self.active:
            raise MigrationError("complete() with no open intent")
        self.op = None
        self.slot = None
        self.moves = []
        self._committed = set()

    def as_dict(self) -> dict:
        return {
            "op": self.op,
            "slot": self.slot,
            "moves": len(self.moves),
            "committed": len(self._committed),
        }


@dataclass
class MigrationStats:
    """Counters for one migration job (merged into ClusterStats)."""

    ranges_total: int = 0
    ranges_done: int = 0
    blocks_copied: int = 0
    dirty_blocks_copied: int = 0
    catchup_passes: int = 0
    forced_finals: int = 0
    throttle_defers: int = 0
    guard_defers: int = 0
    skipped_clean: int = 0
    frozen_skips: int = 0


class MigrationJob:
    """One resumable topology change, pumped from the router's I/O path.

    The router calls :meth:`pump` from its service path (exactly how
    ``SrcCache._check_timeout`` pumps the rebuild controller), so
    migration only makes progress while simulated time advances, and
    its I/O competes with the foreground traffic the throttle bounds.
    """

    def __init__(self, router, moves: List[RangeMove],
                 config: ClusterConfig, bucket: TokenBucket,
                 guard: ForegroundGuard, kind: str = "start"):
        self.router = router
        self.config = config
        self.bucket = bucket
        self.guard = guard
        self.kind = kind
        self.moves: Deque[RangeMove] = deque(moves)
        self.stats = MigrationStats(ranges_total=len(moves))
        # Per-move walk state.
        self._work: Optional[Deque[Tuple[int, bool]]] = None
        self._copied: Dict[int, int] = {}     # lba -> version at copy time
        self._passes = 0

    @property
    def done(self) -> bool:
        return not self.moves

    # ------------------------------------------------------------------
    def _range_blocks(self, move: RangeMove, source,
                      for_copy: bool = False) -> List[Tuple[int, bool]]:
        """Source's cached blocks whose slab hashes into the move's arc.

        With ``for_copy`` and ``migrate_clean=False``, clean blocks are
        skipped (the origin re-fills them on miss at the target) — but
        the eviction walk at hand-off must NOT skip them, or the source
        would keep serving a range it no longer owns.
        """
        ring = self.router.ring
        slab = self.config.slab_blocks
        out = []
        for lba, dirty in source.cached_blocks():
            if move.contains(ring.key_hash(lba // slab)):
                if for_copy and not dirty and not self.config.migrate_clean:
                    self.stats.skipped_clean += 1
                    continue
                out.append((lba, dirty))
        return out

    def _stale(self, move: RangeMove, source) -> List[Tuple[int, bool]]:
        """Blocks written (or newly admitted) since their last copy."""
        return [(lba, dirty)
                for lba, dirty in self._range_blocks(move, source,
                                                     for_copy=True)
                if self._copied.get(lba) != source.block_version(lba)]

    def _copy_one(self, lba: int, source, target, now: float) -> float:
        read_end = source.migrate_read(lba, now)
        if read_end is None:
            # Trimmed or dropped between snapshot and copy: nothing to
            # move, and nothing to own.
            self._copied.pop(lba, None)
            return now
        # Dirty state and version are read at copy time, together with
        # the data: the walk snapshot's flag may be stale, and a write
        # that raced in between already bumped the version this copy
        # records — trusting the snapshot would drop the dirty bit.
        dirty = source.block_dirty(lba)
        end = target.admit_block(lba, dirty, read_end)
        self._copied[lba] = source.block_version(lba)
        self.stats.blocks_copied += 1
        if dirty:
            self.stats.dirty_blocks_copied += 1
        return end

    # ------------------------------------------------------------------
    def pump(self, now: float) -> None:
        """Advance the migration by at most one copy batch or hand-off."""
        if self.done:
            return
        if self.guard.hot():
            self.stats.guard_defers += 1
            return
        move = self.moves[0]
        source = self.router.shards.get(move.source)
        target = self.router.shards.get(move.target)
        if (source is None or target is None
                or not self.router.slot_serving(move.source)
                or not self.router.slot_serving(move.target)):
            # An endpoint died mid-migration: freeze this move (its
            # override keeps routing the range to the source slot, which
            # falls through to the origin while unhealthy) and rotate it
            # to the back so healthy moves still progress.
            self.stats.frozen_skips += 1
            self.moves.rotate(-1)
            self._work = None
            self._copied = {}
            self._passes = 0
            return

        if self._work is None:
            self._work = deque(self._range_blocks(move, source,
                                                  for_copy=True))
            self._copied = {}
            self._passes = 0

        if self._work:
            batch = min(len(self._work), self.config.migration_unit_blocks)
            nbytes = batch * PAGE_SIZE
            if self.bucket.ready_time(nbytes, now) > now:
                self.stats.throttle_defers += 1
                return
            self.bucket.consume(nbytes, now)
            for _ in range(batch):
                lba, _dirty = self._work.popleft()
                self._copy_one(lba, source, target, now)
            if self._work:
                return

        # Work list drained: catch up with writes that raced the copy.
        stale = self._stale(move, source)
        if stale and self._passes < self.config.max_catchup_passes:
            self._passes += 1
            self.stats.catchup_passes += 1
            self._work = deque(stale)
            return
        if stale:
            # Forced final copy: one uninterruptible (single pump step,
            # single-threaded simulation) pass over the remainder.
            self.stats.forced_finals += 1
            for lba, _dirty in stale:
                self._copy_one(lba, source, target, now)

        self._handoff(move, source, target, now)

    def _handoff(self, move: RangeMove, source, target, now: float) -> None:
        """Seal the target, commit the flip, forget on the source."""
        target.handle_flush(now)          # durable BEFORE the flip
        self.router.commit_move(move, now)
        for lba, _ in self._range_blocks(move, source):
            source.evict_block(lba)
        self.moves.popleft()
        self._work = None
        self._copied = {}
        self._passes = 0
        self.stats.ranges_done += 1
