"""Split-phase request lifecycle: submissions and bounded device queues.

The simulator's call tree is one-shot — ``submit(req, now)`` returns a
completion time — but a real block stack runs a queued lifecycle: a
request is *issued*, waits for a device queue slot, *begins* service,
and *completes*.  This module makes that lifecycle explicit without
giving up the call-tree's cheapness:

* :class:`Submission` records the three timestamps plus the request's
  origin tag, so callers can separate queueing delay from service time
  and foreground latency from background occupancy;
* :class:`QueuedDevice` is a mixin for :class:`~repro.block.device.
  BlockDevice` subclasses that enforces a per-device queue-depth limit
  (SATA NCQ's 32 slots, an HBA's configured depth): once
  ``queue_depth`` submissions are outstanding, a new request's service
  *begin* is pushed to the earliest outstanding completion — explicit
  queueing delay, accounted per device.

Devices that do not mix in :class:`QueuedDevice` keep the synchronous
fast path: :meth:`~repro.block.device.BlockDevice._admit` returns
``now`` unchanged and no per-request bookkeeping happens, which is the
zero-cost default the baseline targets rely on.
"""

from __future__ import annotations

import heapq
from typing import List

from repro.common.errors import ConfigError
from repro.common.types import IoOrigin, Request


class Submission:
    """One request's trip through a device: issue → begin → complete.

    ``issue_t`` is when the caller handed the request to the device;
    ``begin_t`` is when service actually started (the gap is queueing
    delay behind the device's queue-depth limit); ``done_t`` is the
    completion time.  ``origin`` attributes the work (foreground, GC,
    destage, rebuild) and ``device`` names the servicing device.

    One Submission is allocated per request on the split-phase path,
    so this is a ``__slots__`` class; treat instances as immutable.
    ``tenant`` carries the request's tenant tag (``None`` when the
    stack is single-tenant), defaulting to ``req.tenant``.
    """

    __slots__ = ("req", "device", "issue_t", "begin_t", "done_t", "origin",
                 "tenant")

    def __init__(self, req: Request, device: str, issue_t: float,
                 begin_t: float, done_t: float,
                 origin: IoOrigin = IoOrigin.FOREGROUND,
                 tenant: "str | None" = None):
        self.req = req
        self.device = device
        self.issue_t = issue_t
        self.begin_t = begin_t
        self.done_t = done_t
        self.origin = origin
        self.tenant = tenant if tenant is not None else req.tenant

    def __repr__(self) -> str:
        return (f"Submission(req={self.req!r}, device={self.device!r}, "
                f"issue_t={self.issue_t}, begin_t={self.begin_t}, "
                f"done_t={self.done_t}, origin={self.origin!r})")

    @property
    def queue_delay(self) -> float:
        """Time spent waiting for a device queue slot."""
        return self.begin_t - self.issue_t

    @property
    def service_time(self) -> float:
        """Time from service begin to completion."""
        return self.done_t - self.begin_t

    @property
    def latency(self) -> float:
        """Issue-to-completion time — what the submitter observes."""
        return self.done_t - self.issue_t

    def as_dict(self) -> dict:
        return {
            "device": self.device,
            "op": self.req.op.value,
            "origin": self.origin.value,
            "tenant": self.tenant,
            "issue_t": self.issue_t,
            "begin_t": self.begin_t,
            "done_t": self.done_t,
            "queue_delay": self.queue_delay,
            "service_time": self.service_time,
        }


class QueueStats:
    """Per-device queue-occupancy counters (``__slots__``: updated on
    every retire of a queued device)."""

    __slots__ = ("submissions", "queued_ops", "queue_delay_total",
                 "max_outstanding")

    def __init__(self, submissions: int = 0, queued_ops: int = 0,
                 queue_delay_total: float = 0.0, max_outstanding: int = 0):
        self.submissions = submissions
        self.queued_ops = queued_ops          # waited for a slot
        self.queue_delay_total = queue_delay_total
        self.max_outstanding = max_outstanding

    @property
    def mean_queue_delay(self) -> float:
        return (self.queue_delay_total / self.queued_ops
                if self.queued_ops else 0.0)

    def as_dict(self) -> dict:
        return {
            "submissions": self.submissions,
            "queued_ops": self.queued_ops,
            "queue_delay_total": self.queue_delay_total,
            "max_outstanding": self.max_outstanding,
            "mean_queue_delay": self.mean_queue_delay,
        }


class QueuedDevice:
    """Mixin: bounded submission queue for a ``BlockDevice`` subclass.

    Call :meth:`init_queue` from ``__init__`` with the device's queue
    depth (0 disables the limit and restores the synchronous fast
    path).  The mixin overrides the ``_admit``/``_retire`` lifecycle
    hooks of :class:`~repro.block.device.BlockDevice`: admission pops
    completed submissions off the in-flight heap and, at the depth
    limit, delays service begin until the earliest outstanding
    completion.  Retries re-enter through ``submit`` like any other
    request, so a retried I/O queues behind the traffic that arrived
    while it backed off — it cannot jump the line.
    """

    queue_depth: int = 0

    def init_queue(self, queue_depth: int) -> None:
        if queue_depth < 0:
            raise ConfigError(
                f"queue_depth must be >= 0, got {queue_depth}")
        self.queue_depth = queue_depth
        self._inflight: List[float] = []
        self.qstats = QueueStats()

    # -- lifecycle hooks (see BlockDevice.submit) ----------------------
    def _admit(self, req: Request, now: float) -> float:
        if not self.queue_depth:
            return now
        q = self._inflight
        while q and q[0] <= now:
            heapq.heappop(q)
        begin = now
        while len(q) >= self.queue_depth:
            begin = max(begin, heapq.heappop(q))
        return begin

    def _retire(self, req: Request, now: float, begin: float,
                done: float) -> None:
        if not self.queue_depth:
            return
        heapq.heappush(self._inflight, done)
        qs = self.qstats
        qs.submissions += 1
        depth = len(self._inflight)
        if depth > qs.max_outstanding:
            qs.max_outstanding = depth
        if begin > now:
            qs.queued_ops += 1
            qs.queue_delay_total += begin - now
        if self.obs.enabled:
            self.obs.observe_queue(self, depth, begin - now)

    def outstanding(self, now: float) -> int:
        """Submissions still in flight at simulated time ``now``."""
        return sum(1 for done in self._inflight if done > now)
