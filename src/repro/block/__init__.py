"""Block-device abstraction (the Device Mapper analogue)."""

from repro.block.device import (BlockDevice, LinearDevice, NullDevice,
                                StatsDevice)
from repro.block.lifecycle import QueuedDevice, QueueStats, Submission

__all__ = [
    "BlockDevice", "LinearDevice", "NullDevice", "StatsDevice",
    "QueuedDevice", "QueueStats", "Submission",
]
