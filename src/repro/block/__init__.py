"""Block-device abstraction (the Device Mapper analogue)."""
