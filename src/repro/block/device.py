"""Block-device abstraction — the Device Mapper analogue.

Every storage entity in the stack (raw simulated SSD, RAID array,
caching target, backend storage) implements :class:`BlockDevice`.  A
device consumes a :class:`~repro.common.types.Request` at a given
simulated time and returns the completion time, updating its internal
resource timelines.  Devices stack exactly like Device Mapper targets:
a cache target holds references to a cache device and an origin device
and forwards (possibly transformed) requests downward.
"""

from __future__ import annotations

import abc
from typing import List

from repro.block.lifecycle import Submission
from repro.common.errors import AddressError
from repro.common.types import IoStats, Op, Request
from repro.obs.metrics import Histogram
from repro.obs.recorder import NULL_RECORDER


class BlockDevice(abc.ABC):
    """Abstract simulated block device.

    Requests run a split-phase lifecycle: ``submit`` validates and
    accounts the request, asks :meth:`_admit` when service may begin
    (the base class admits immediately; the
    :class:`~repro.block.lifecycle.QueuedDevice` mixin delays admission
    past a queue-depth limit), runs :meth:`_service` from that begin
    time, and hands the completed timestamps to :meth:`_retire` for
    queue bookkeeping.  ``submit`` returns the completion time;
    ``submit_request`` returns the full
    :class:`~repro.block.lifecycle.Submission`.
    """

    def __init__(self, size: int, name: str = ""):
        self.size = size
        self.name = name or type(self).__name__
        self.stats = IoStats()
        self.obs = NULL_RECORDER

    @abc.abstractmethod
    def _service(self, req: Request, now: float) -> float:
        """Device-specific handling; returns completion time."""

    # -- lifecycle hooks (overridden by QueuedDevice) ------------------
    def _admit(self, req: Request, now: float) -> float:
        """When service may begin; the no-queue fast path is ``now``."""
        return now

    def _retire(self, req: Request, now: float, begin: float,
                done: float) -> None:
        """Completion bookkeeping; no-op without a queue."""

    def _lifecycle(self, req: Request, now: float) -> "tuple[float, float]":
        """Validate, account, admit, service, retire: (begin, done)."""
        if req.op is not Op.FLUSH and req.end > self.size:
            raise AddressError(
                f"{self.name}: request [{req.offset}, {req.end}) beyond "
                f"device size {self.size}")
        self.stats.record(req)
        begin = self._admit(req, now)
        done = self._service(req, begin)
        self._retire(req, now, begin, done)
        if self.obs.enabled:
            self.obs.observe_io(self, req, now, done)
        return begin, done

    def submit(self, req: Request, now: float) -> float:
        """Validate, account and service a request."""
        return self._lifecycle(req, now)[1]

    def submit_request(self, req: Request, now: float) -> Submission:
        """Like :meth:`submit`, but return the full lifecycle record."""
        begin, done = self._lifecycle(req, now)
        return Submission(req=req, device=self.name, issue_t=now,
                          begin_t=begin, done_t=done, origin=req.origin)

    # Convenience helpers used heavily by tests and examples.
    def read(self, offset: int, length: int, now: float) -> float:
        return self.submit(Request(Op.READ, offset, length), now)

    def write(self, offset: int, length: int, now: float,
              fua: bool = False) -> float:
        return self.submit(Request(Op.WRITE, offset, length, fua=fua), now)

    def flush(self, now: float) -> float:
        return self.submit(Request(Op.FLUSH), now)

    def trim(self, offset: int, length: int, now: float) -> float:
        return self.submit(Request(Op.TRIM, offset, length), now)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} size={self.size}>"


class NullDevice(BlockDevice):
    """Infinitely fast device; useful as a stub in unit tests."""

    def __init__(self, size: int, latency: float = 0.0, name: str = "null"):
        super().__init__(size, name)
        self.latency = latency

    def _service(self, req: Request, now: float) -> float:
        return now + self.latency


class LinearDevice(BlockDevice):
    """A contiguous window onto a lower device (dm-linear)."""

    def __init__(self, lower: BlockDevice, start: int, size: int,
                 name: str = "linear"):
        if start + size > lower.size:
            raise AddressError(
                f"linear window [{start}, {start + size}) beyond "
                f"{lower.name} size {lower.size}")
        super().__init__(size, name)
        self.lower = lower
        self.start = start

    def _service(self, req: Request, now: float) -> float:
        if req.op is Op.FLUSH:
            return self.lower.submit(req, now)
        shifted = Request(req.op, req.offset + self.start, req.length,
                          fua=req.fua, origin=req.origin, tenant=req.tenant)
        return self.lower.submit(shifted, now)


class StatsDevice(BlockDevice):
    """Transparent pass-through that measures traffic and latency.

    Interposed between layers to measure I/O amplification: the paper's
    amplification metric is (bytes observed at the cache-device layer) /
    (bytes requested by the application) — :meth:`amplification` divides
    this tap's observed bytes by the application byte count.  Every
    request's service latency (completion − issue time) is recorded in
    the log-scale :attr:`latency` histogram.
    """

    def __init__(self, lower: BlockDevice, name: str = ""):
        super().__init__(lower.size, name or f"stats({lower.name})")
        self.lower = lower
        self.latency = Histogram(f"{self.name}.latency_s")

    def _service(self, req: Request, now: float) -> float:
        done = self.lower.submit(req, now)
        self.latency.record(done - now)
        return done

    def amplification(self, app_bytes: int) -> float:
        """Observed-here bytes per application byte (the paper's metric).

        ``app_bytes`` is the application-level byte count the traffic
        through this tap amplifies; 0 when nothing was requested yet.
        """
        return self.stats.total_bytes / app_bytes if app_bytes else 0.0

    def snapshot_bytes(self) -> int:
        """Current observed byte total (for windowed amplification)."""
        return self.stats.total_bytes


def total_bytes(devices: List[BlockDevice]) -> int:
    """Sum of read+write bytes observed across ``devices``."""
    return sum(d.stats.total_bytes for d in devices)
