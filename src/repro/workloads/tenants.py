"""Multi-tenant workload population (docs/tenancy.md).

Real consolidated arrays see a heavy-tailed tenant mix: many small
tenants with modest, cache-friendly working sets, and a few *whales*
whose write footprints would swallow the whole cache if allowed.  This
module builds such a population deterministically:

* :func:`zipf_population` sizes tenant volumes by a Zipf-like decay, so
  tenant 0 (the biggest whale) gets the lion's share of the bytes and
  the tail tenants get small slices;
* :func:`tenant_stream` generates each tenant's request stream —
  volume-relative offsets with Zipf locality inside the tenant's own
  working set, tagged with the tenant name;
* :func:`volume_router` adapts a tenant→Volume map into the engine's
  issue-function contract, dispatching each tagged request to its
  owner's volume.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List

import numpy as np

from repro.common.errors import ConfigError
from repro.common.types import Op, Request
from repro.common.units import MIB, PAGE_SIZE
from repro.tenancy.qos import QosSpec
from repro.workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload and QoS description."""

    name: str
    volume_bytes: int
    qos: QosSpec = QosSpec()
    read_fraction: float = 0.5
    request_size: int = PAGE_SIZE
    zipf_theta: float = 0.99
    streams: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.volume_bytes < self.request_size:
            raise ConfigError(
                f"tenant {self.name}: volume smaller than one request")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigError("read_fraction must be in [0, 1]")


def zipf_population(n_tenants: int, total_bytes: int,
                    n_whales: int = 1,
                    alpha: float = 1.2,
                    whale_qos: QosSpec = QosSpec(),
                    small_qos: QosSpec = QosSpec(),
                    read_fraction: float = 0.5,
                    whale_read_fraction: float = 0.1,
                    seed: int = 0) -> List[TenantSpec]:
    """A heavy-tailed tenant population over ``total_bytes``.

    Volume sizes decay as ``1 / rank**alpha`` (page-aligned, at least
    4 MiB each).  The first ``n_whales`` tenants are write-heavy
    whales under ``whale_qos``; the rest are balanced small tenants
    under ``small_qos``.
    """
    if n_tenants < 1:
        raise ConfigError("need at least one tenant")
    if not 0 <= n_whales <= n_tenants:
        raise ConfigError("n_whales must be within the population")
    weights = np.array([1.0 / (rank + 1) ** alpha
                        for rank in range(n_tenants)])
    weights /= weights.sum()
    floor = 4 * MIB
    specs: List[TenantSpec] = []
    for rank, weight in enumerate(weights):
        size = max(floor, int(weight * total_bytes) // PAGE_SIZE * PAGE_SIZE)
        whale = rank < n_whales
        specs.append(TenantSpec(
            name=(f"whale{rank}" if whale else f"tenant{rank}"),
            volume_bytes=size,
            qos=whale_qos if whale else small_qos,
            read_fraction=whale_read_fraction if whale else read_fraction,
            seed=seed + rank))
    total = sum(s.volume_bytes for s in specs)
    if total > total_bytes:
        # The per-tenant floor can overshoot on tiny budgets; shrink the
        # biggest volume to compensate rather than failing.
        overshoot = total - total_bytes
        head = specs[0]
        shrunk = (head.volume_bytes - overshoot) // PAGE_SIZE * PAGE_SIZE
        if shrunk < floor:
            raise ConfigError(
                f"total_bytes={total_bytes} too small for {n_tenants} "
                f"tenants (needs >= {floor} bytes each)")
        specs[0] = replace(head, volume_bytes=shrunk)
    return specs


def tenant_stream(spec: TenantSpec, stream: int = 0) -> Iterator[Request]:
    """One closed-loop request stream for a tenant, forever.

    Offsets are volume-relative with Zipf(``zipf_theta``) locality
    over the tenant's own blocks; every request carries the tenant
    tag so a router or Volume can attribute it.
    """
    blocks = spec.volume_bytes // PAGE_SIZE
    span_blocks = max(1, blocks - spec.request_size // PAGE_SIZE + 1)
    sampler = ZipfSampler(span_blocks, theta=spec.zipf_theta,
                          seed=spec.seed * 1000 + stream)
    rng = np.random.default_rng(spec.seed * 1000 + stream + 7)
    while True:
        offset = sampler.sample() * PAGE_SIZE
        op = Op.READ if rng.random() < spec.read_fraction else Op.WRITE
        yield Request(op, offset, spec.request_size, tenant=spec.name)


def population_streams(specs: List[TenantSpec]) -> List[Iterator[Request]]:
    """All streams for a population (``spec.streams`` each)."""
    return [tenant_stream(spec, stream)
            for spec in specs for stream in range(spec.streams)]


def volume_router(volumes: Dict[str, "object"]):
    """Engine issue function dispatching tagged requests to volumes.

    ``volumes`` maps tenant name → :class:`~repro.tenancy.volume.
    Volume` (or any BlockDevice).  Requests must carry a tenant tag
    known to the map.
    """
    def issue(req: Request, now: float) -> float:
        return volumes[req.tenant].submit(req, now)
    return issue
