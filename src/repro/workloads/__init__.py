"""Workload generation: FIO-style benchmarks, the Table 6
synthetic trace set, real MSR-CSV trace I/O, and the replayer."""
