"""Zipfian block popularity — the skew engine behind the trace models.

Production block workloads (MSR Cambridge and Microsoft Production
Server traces, Table 6) are highly skewed: a small hot set absorbs most
accesses.  We model per-trace skew with a bounded Zipf distribution
sampled efficiently via inverse-CDF lookup on a precomputed table, with
a per-trace shuffle so different traces hash their hot sets to
different regions of the volume.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.common.chunks import (DEFAULT_CHUNK_REQUESTS, OP_CODE, make_chunk,
                                 requests_from_chunk)
from repro.common.errors import ConfigError
from repro.common.types import Op, Request
from repro.common.units import KIB, PAGE_SIZE


class ZipfSampler:
    """Bounded Zipf(theta) over ``n`` items with O(log n) sampling."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0,
                 shuffle: bool = True):
        if n <= 0:
            raise ConfigError("n must be positive")
        if theta < 0:
            raise ConfigError("theta must be >= 0")
        self.n = n
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if shuffle:
            self._perm = self._rng.permutation(n)
        else:
            self._perm = None

    def sample(self) -> int:
        """Draw one item index in [0, n)."""
        u = self._rng.random()
        rank = int(np.searchsorted(self._cdf, u))
        if self._perm is not None:
            return int(self._perm[rank])
        return rank

    def sample_many(self, count: int) -> np.ndarray:
        """Vectorised draw of ``count`` item indexes."""
        u = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, u)
        if self._perm is not None:
            return self._perm[ranks]
        return ranks

    def hot_fraction(self, top: float = 0.1) -> float:
        """Probability mass of the top ``top`` fraction of items.

        Useful to sanity-check skew: theta=0.99 puts ~63% of accesses
        on the hottest 10% of blocks for n ~ 1e5.
        """
        cutoff = max(1, int(self.n * top))
        return float(self._cdf[cutoff - 1])


def zipf_chunks(span: int, request_size: int = 4 * KIB,
                theta: float = 0.99, op: Op = Op.WRITE, seed: int = 0,
                chunk_requests: int = DEFAULT_CHUNK_REQUESTS
                ) -> Iterator[np.ndarray]:
    """Chunked Zipf-skewed request stream over ``span`` bytes, forever.

    Offsets are page-aligned with Zipf(``theta``) popularity; the
    vector draw (:meth:`ZipfSampler.sample_many`) consumes the RNG
    bitstream exactly as repeated scalar :meth:`ZipfSampler.sample`
    calls do, so :func:`zipf_requests` (the flattened form) is
    bit-identical row for row.
    """
    if request_size <= 0 or span < request_size:
        raise ConfigError("span must cover at least one request")
    if chunk_requests <= 0:
        raise ConfigError("chunk_requests must be positive")
    slots = max(1, (span - request_size) // PAGE_SIZE + 1)
    sampler = ZipfSampler(slots, theta=theta, seed=seed)
    op_code = OP_CODE[op]
    while True:
        offsets = (sampler.sample_many(chunk_requests).astype(np.int64)
                   * PAGE_SIZE)
        yield make_chunk(offsets, request_size, op_code)


def zipf_requests(span: int, request_size: int = 4 * KIB,
                  theta: float = 0.99, op: Op = Op.WRITE, seed: int = 0
                  ) -> Iterator[Request]:
    """Scalar form of :func:`zipf_chunks` — same rows, Request objects."""
    for chunk in zipf_chunks(span, request_size, theta, op, seed):
        for request in requests_from_chunk(chunk):
            yield request
