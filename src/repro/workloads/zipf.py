"""Zipfian block popularity — the skew engine behind the trace models.

Production block workloads (MSR Cambridge and Microsoft Production
Server traces, Table 6) are highly skewed: a small hot set absorbs most
accesses.  We model per-trace skew with a bounded Zipf distribution
sampled efficiently via inverse-CDF lookup on a precomputed table, with
a per-trace shuffle so different traces hash their hot sets to
different regions of the volume.
"""

from __future__ import annotations


import numpy as np

from repro.common.errors import ConfigError


class ZipfSampler:
    """Bounded Zipf(theta) over ``n`` items with O(log n) sampling."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0,
                 shuffle: bool = True):
        if n <= 0:
            raise ConfigError("n must be positive")
        if theta < 0:
            raise ConfigError("theta must be >= 0")
        self.n = n
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if shuffle:
            self._perm = self._rng.permutation(n)
        else:
            self._perm = None

    def sample(self) -> int:
        """Draw one item index in [0, n)."""
        u = self._rng.random()
        rank = int(np.searchsorted(self._cdf, u))
        if self._perm is not None:
            return int(self._perm[rank])
        return rank

    def sample_many(self, count: int) -> np.ndarray:
        """Vectorised draw of ``count`` item indexes."""
        u = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, u)
        if self._perm is not None:
            return self._perm[ranks]
        return ranks

    def hot_fraction(self, top: float = 0.1) -> float:
        """Probability mass of the top ``top`` fraction of items.

        Useful to sanity-check skew: theta=0.99 puts ~63% of accesses
        on the hottest 10% of blocks for n ~ 1e5.
        """
        cutoff = max(1, int(self.n * top))
        return float(self._cdf[cutoff - 1])
