"""Trace replay harness — the paper's ``trace-replay`` tool.

The authors built a replayer that turns workload traces into real I/O
against the cache target, with each trace driven by four threads and
all traces of a group running simultaneously (§5.1).  This module wires
the synthetic Table 6 traces to the closed-loop engine and reports the
paper's metrics: throughput (MB/s), I/O amplification, and hit ratio.

A ``warmup`` window can precede measurement: the paper's 10-minute
accumulated runs are long enough that steady state dominates; at scaled
footprints a warm-up pass followed by a measured window reproduces that
steady state without simulating the full wall-clock duration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.common import CacheTarget
from repro.common.types import IoStats, LatencyStats, Request
from repro.common.units import mb_per_sec
from repro.obs.recorder import get_recorder
from repro.sim.engine import run_chunk_streams, run_streams
from repro.workloads.msr import build_group, build_group_chunks


@dataclass
class ReplayResult:
    """Metrics of one trace-group replay (measured window only)."""

    group: str
    elapsed: float
    app_bytes: int
    read_bytes: int
    write_bytes: int
    completed_ops: int
    io_amplification: float
    hit_ratio: float
    ssd_bytes: int
    origin_bytes: int
    latency: LatencyStats = None

    @property
    def throughput_mb_s(self) -> float:
        return mb_per_sec(self.app_bytes, self.elapsed)

    @property
    def read_mb_s(self) -> float:
        return mb_per_sec(self.read_bytes, self.elapsed)

    @property
    def write_mb_s(self) -> float:
        return mb_per_sec(self.write_bytes, self.elapsed)

    def as_dict(self) -> dict:
        return {
            "group": self.group,
            "elapsed": self.elapsed,
            "app_bytes": self.app_bytes,
            "read_bytes": self.read_bytes,
            "write_bytes": self.write_bytes,
            "completed_ops": self.completed_ops,
            "throughput_mb_s": self.throughput_mb_s,
            "io_amplification": self.io_amplification,
            "hit_ratio": self.hit_ratio,
            "ssd_bytes": self.ssd_bytes,
            "origin_bytes": self.origin_bytes,
            "latency": (self.latency.as_dict()
                        if self.latency is not None else None),
        }


def replay_group(target: CacheTarget, group: str, scale: float = 1.0,
                 duration: float = 60.0, warmup: float = 0.0,
                 seed: int = 0, threads_per_trace: int = 4,
                 max_requests: int = 0,
                 footprint_cap_gb: float = 0.0,
                 think_time: float = 0.0,
                 batched: bool = False) -> ReplayResult:
    """Replay one trace group against a cache target.

    ``scale`` shrinks trace footprints to match scaled-down devices.
    ``duration`` is the measured window in simulated seconds; if
    ``warmup`` is nonzero the first ``warmup`` simulated seconds run
    unmeasured so the cache reaches steady state first.

    ``think_time`` inserts a per-thread pause between a completion and
    the next issue.  Zero reproduces the paper's saturated replay; a
    nonzero value paces the offered load below saturation, which is how
    latency comparisons "at equal throughput" are run.

    ``batched`` replays the same traces through the engine's chunked
    loop: each thread becomes a ``ChunkStream`` over the trace's
    structured-array chunks, and conformant spans are handed to the
    target's ``submit_chunk`` in one call.  Results are bit-identical
    to the scalar replay (the chunk path is differential-tested against
    per-request submission); targets without ``submit_chunk``, or runs
    with a bound sampler, fall back to the scalar loop.
    """
    window = {
        "started": warmup <= 0.0,
        "app": IoStats(),
        "cstats": target.cstats.copy() if warmup <= 0.0 else None,
        "ssd": _ssd_bytes(target) if warmup <= 0.0 else 0,
        "origin": target.origin.stats.total_bytes if warmup <= 0.0 else 0,
        "ops": 0,
        "latency": LatencyStats(),
    }

    def issue(req: Request, now: float) -> float:
        if not window["started"] and now >= warmup:
            window["started"] = True
            window["cstats"] = target.cstats.copy()
            window["ssd"] = _ssd_bytes(target)
            window["origin"] = target.origin.stats.total_bytes
        done = target.submit(req, now)
        if window["started"]:
            window["app"].record(req)
            window["ops"] += 1
            window["latency"].record(done - now)
        return done

    def issue_chunk(rows, start, think, deadline, limit):
        if not window["started"]:
            if start < warmup:
                # Scalar fallback paces through warm-up one row at a
                # time so the measurement snapshot lands on the exact
                # request it would in the scalar replay.
                return None, None, 0
            window["started"] = True
            window["cstats"] = target.cstats.copy()
            window["ssd"] = _ssd_bytes(target)
            window["origin"] = target.origin.stats.total_bytes
        issue_t, done_t, n = target.submit_chunk(rows, start, think,
                                                 deadline, limit)
        if n:
            served = rows[:n]
            window["app"].record_chunk(served["op"], served["length"],
                                       served["origin"])
            window["ops"] += n
            window["latency"].record_many(done_t - issue_t)
        return issue_t, done_t, n

    recorder = get_recorder()
    sampler = recorder.sampler if recorder.enabled else None
    if sampler is not None:
        sampler.bind_target(target)
    use_batched = (batched and sampler is None
                   and hasattr(target, "submit_chunk"))
    if use_batched:
        chunk_streams, span = build_group_chunks(
            group, scale=scale, seed=seed,
            threads_per_trace=threads_per_trace,
            footprint_cap_gb=footprint_cap_gb)
    else:
        streams, span = build_group(group, scale=scale, seed=seed,
                                    threads_per_trace=threads_per_trace,
                                    footprint_cap_gb=footprint_cap_gb)
    if span > target.size:
        raise ValueError(
            f"trace group spans {span} bytes but the target volume is "
            f"{target.size}; enlarge the origin or lower scale")
    if use_batched:
        run = run_chunk_streams(issue, chunk_streams,
                                duration=warmup + duration,
                                think_time=think_time,
                                max_requests=max_requests,
                                issue_chunk=issue_chunk)
    else:
        run = run_streams(issue, streams, duration=warmup + duration,
                          think_time=think_time,
                          max_requests=max_requests, sampler=sampler)
    if window["cstats"] is None:   # run too short to leave warm-up
        window["cstats"] = target.cstats.copy()
    measured = min(duration, max(run.elapsed - warmup, 1e-9))

    app = window["app"]
    ssd_delta = _ssd_bytes(target) - window["ssd"]
    origin_delta = target.origin.stats.total_bytes - window["origin"]
    return ReplayResult(
        group=group,
        elapsed=measured,
        app_bytes=app.total_bytes,
        read_bytes=app.read_bytes,
        write_bytes=app.write_bytes,
        completed_ops=window["ops"],
        io_amplification=(ssd_delta / app.total_bytes
                          if app.total_bytes else 0.0),
        hit_ratio=target.cstats.window_hit_ratio(window["cstats"]),
        ssd_bytes=ssd_delta,
        origin_bytes=origin_delta,
        latency=window["latency"],
    )


def _ssd_bytes(target: CacheTarget) -> int:
    """Bytes moved at the cache-device layer, whatever the target type."""
    if hasattr(target, "ssd_bytes"):
        return target.ssd_bytes()
    return target.cache_dev.stats.total_bytes
