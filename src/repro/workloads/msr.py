"""Synthetic stand-ins for the paper's trace set (Table 6).

The paper replays block traces from Microsoft Production Servers (MPS)
and MSR Cambridge (MCS).  Those traces are not redistributable here, so
each is synthesised from its Table 6 characteristics — mean request
size, volume footprint, read ratio — plus a Zipfian popularity skew
(production block traces are strongly skewed; skew is what gives
caching, hotness tracking and Sel-GC their bite).

Traces are organised into the paper's three groups (Write, Mixed,
Read); each group's aggregate working set is ~50 GB before scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.common.chunks import (DEFAULT_CHUNK_REQUESTS, OP_READ, OP_WRITE,
                                 empty_chunk, requests_from_chunk)
from repro.common.errors import ConfigError
from repro.common.types import Op, Request
from repro.common.units import GB, KB, KIB, PAGE_SIZE
from repro.workloads.zipf import ZipfSampler


@dataclass(frozen=True)
class TraceSpec:
    """One row of Table 6."""

    name: str
    group: str                # "write" | "mixed" | "read"
    req_size_kb: float        # mean request size
    footprint_gb: float       # volume size touched by the trace
    read_ratio: float         # fraction of requests that are reads
    skew_theta: float = 1.20  # zipf skew (not in Table 6; MSR traces
                              # concentrate ~90% of I/O on ~10% of blocks)

    @property
    def mean_request_bytes(self) -> int:
        return int(self.req_size_kb * KB)

    @property
    def footprint_bytes(self) -> int:
        return int(self.footprint_gb * GB)

    @property
    def seq_prob(self) -> float:
        """Probability the next request continues a sequential run.

        Block traces with large mean requests are scan-heavy (e.g.
        src21 at 59 KB is a nearly pure sequential read workload);
        small-request traces are dominated by random accesses.  Derived
        from the request size since Table 6 does not report run
        lengths.
        """
        return min(0.8, max(0.05, self.req_size_kb / 75.0))


# Table 6, verbatim.
TRACES: Dict[str, TraceSpec] = {
    spec.name: spec for spec in [
        # Write group
        TraceSpec("prxy0", "write", 7.07, 84.44, 0.03),
        TraceSpec("exch9", "write", 21.06, 110.46, 0.31),
        TraceSpec("mds0", "write", 9.59, 11.08, 0.29),
        TraceSpec("mds1", "write", 9.59, 11.08, 0.29),
        TraceSpec("stg0", "write", 11.95, 23.16, 0.31),
        TraceSpec("msn0", "write", 21.73, 31.28, 0.06),
        TraceSpec("msn1", "write", 17.84, 37.80, 0.44),
        TraceSpec("src12", "write", 29.25, 53.23, 0.16),
        TraceSpec("src20", "write", 7.59, 11.28, 0.12),
        TraceSpec("src22", "write", 56.31, 62.12, 0.36),
        # Mixed group
        TraceSpec("rsrch0", "mixed", 9.07, 12.41, 0.11),
        TraceSpec("exch5", "mixed", 18.02, 85.628, 0.31),
        TraceSpec("hm0", "mixed", 8.88, 33.84, 0.32),
        TraceSpec("fin0", "mixed", 6.86, 34.91, 0.19),
        TraceSpec("web0", "mixed", 15.29, 29.60, 0.58),
        TraceSpec("prn0", "mixed", 12.53, 66.79, 0.19),
        TraceSpec("msn4", "mixed", 21.73, 31.28, 0.06),
        # Read group
        TraceSpec("ts0", "read", 9.28, 15.95, 0.26),
        TraceSpec("usr0", "read", 22.81, 48.694, 0.72),
        TraceSpec("proj3", "read", 9.75, 20.87, 0.87),
        TraceSpec("src21", "read", 59.31, 37.20, 0.99),
        TraceSpec("msn5", "read", 10.01, 124.0, 0.75),
    ]
}

GROUPS: Dict[str, List[str]] = {
    "write": [n for n, s in TRACES.items() if s.group == "write"],
    "mixed": [n for n, s in TRACES.items() if s.group == "mixed"],
    "read": [n for n, s in TRACES.items() if s.group == "read"],
}

MAX_REQUEST = 512 * KIB  # the prototype's maximum transfer unit (§4.1)

# The traces of each group were chosen so the group's aggregate working
# set is ~50 GB (§5.1) even though the volumes span far more space; the
# synthetic stand-ins therefore confine accesses to a working set scaled
# to this target, apportioned per trace by footprint.
GROUP_WORKING_SET_GB = 50.0


def group_specs(group: str) -> List[TraceSpec]:
    if group not in GROUPS:
        raise ConfigError(f"unknown trace group {group!r}")
    return [TRACES[name] for name in GROUPS[group]]


def _ws_factor(group: str) -> float:
    """Shrink factor mapping raw volume footprints to the ~50 GB WS."""
    total_gb = sum(s.footprint_gb for s in group_specs(group))
    return min(1.0, GROUP_WORKING_SET_GB / total_gb)


def group_footprint(group: str, scale: float = 1.0,
                    footprint_cap_gb: float = 0.0) -> int:
    """Total bytes of working-set space the group's traces access."""
    factor = _ws_factor(group)
    total = 0
    for spec in group_specs(group):
        fp = _scaled_footprint(spec, scale * factor, footprint_cap_gb)
        total += fp
    return total


def _scaled_footprint(spec: TraceSpec, scale: float,
                      footprint_cap_gb: float) -> int:
    fp = spec.footprint_bytes
    if footprint_cap_gb:
        fp = min(fp, int(footprint_cap_gb * GB))
    fp = max(PAGE_SIZE * 64, int(fp * scale))
    return fp - fp % PAGE_SIZE


class SyntheticTrace:
    """Request generator for one Table 6 trace.

    Offsets follow a Zipf-skewed popularity over the trace footprint;
    request sizes are exponential around the trace's mean, 4 KiB
    aligned and capped at 512 KiB; reads/writes follow the read ratio.
    ``region_start`` places this trace's volume inside the shared
    backend address space (traces come from distinct volumes).
    """

    def __init__(self, spec: TraceSpec, region_start: int = 0,
                 scale: float = 1.0, seed: int = 0,
                 footprint_cap_gb: float = 0.0):
        self.spec = spec
        self.region_start = region_start
        self.footprint = _scaled_footprint(spec, scale, footprint_cap_gb)
        self.n_blocks = self.footprint // PAGE_SIZE
        self._rng = np.random.default_rng(seed)
        self._zipf = ZipfSampler(self.n_blocks, spec.skew_theta,
                                 seed=seed + 1)

    def chunks(self, chunk_requests: int = DEFAULT_CHUNK_REQUESTS
               ) -> Iterator["np.ndarray"]:
        """Endless chunked request stream (the replayer bounds duration).

        Randomness is drawn column-wise, one fixed order per chunk —
        (1) size exponentials, (2) sequential-continuation uniforms,
        (3) Zipf start candidates, (4) op uniforms — so every row
        consumes the same draws whether or not it lands in a sequential
        run; the candidate is simply unused on continuation rows.  Only
        the sequential-run state machine (next_seq carry, end-of-volume
        clamps) remains a per-row pass, and it touches no RNG.
        :meth:`requests` flattens these chunks, so both engine paths
        replay the identical trace.
        """
        next_seq = -1
        spec = self.spec
        seq_prob = spec.seq_prob
        read_ratio = spec.read_ratio
        n_blocks = self.n_blocks
        region_start = self.region_start
        rng = self._rng
        # Sizes are (1 + floor(Exp(theta))) x 4 KiB; theta is solved so
        # the floored-exponential's mean hits the spec's mean exactly
        # (naive rounding would inflate small-request traces by ~30%).
        mean_pages = spec.mean_request_bytes / PAGE_SIZE
        max_pages = MAX_REQUEST // PAGE_SIZE
        if mean_pages > 1.05:
            theta = 1.0 / np.log(1.0 + 1.0 / (mean_pages - 1.0))
        else:
            theta = 0.0
        while True:
            chunk = empty_chunk(chunk_requests)
            if theta:
                pages = np.minimum(
                    max_pages,
                    1 + rng.exponential(theta, chunk_requests).astype(
                        np.int64))
            else:
                pages = np.ones(chunk_requests, dtype=np.int64)
            seq_hit = (rng.random(chunk_requests) < seq_prob).tolist()
            candidates = self._zipf.sample_many(chunk_requests).tolist()
            op_draws = rng.random(chunk_requests)
            nblocks = pages.tolist()
            starts = np.empty(chunk_requests, dtype=np.int64)
            for i in range(chunk_requests):
                nb = nblocks[i]
                if next_seq >= 0 and seq_hit[i]:
                    start_block = next_seq  # continue the sequential run
                else:
                    start_block = candidates[i]
                if start_block > n_blocks - nb:
                    start_block = n_blocks - nb
                if start_block < 0:
                    start_block = 0
                next_seq = start_block + nb
                if next_seq + nb > n_blocks:
                    next_seq = -1           # run hit the volume end
                starts[i] = start_block
            chunk["offset"] = region_start + starts * PAGE_SIZE
            chunk["length"] = pages * PAGE_SIZE
            chunk["op"] = np.where(op_draws < read_ratio, OP_READ,
                                   OP_WRITE)
            chunk["time"] = 0.0
            chunk["origin"] = 0
            chunk["tenant"] = -1
            yield chunk

    def requests(self) -> Iterator[Request]:
        """Endless request stream (the replayer bounds duration)."""
        for chunk in self.chunks():
            for request in requests_from_chunk(chunk):
                yield request


def _group_traces(group: str, scale: float, seed: int,
                  threads_per_trace: int, footprint_cap_gb: float
                  ) -> Tuple[List[SyntheticTrace], int]:
    traces: List[SyntheticTrace] = []
    region = 0
    effective_scale = scale * _ws_factor(group)
    for t_index, spec in enumerate(group_specs(group)):
        trace_seed = seed * 10_000 + t_index * 100
        footprint = _scaled_footprint(spec, effective_scale,
                                      footprint_cap_gb)
        for thread in range(threads_per_trace):
            traces.append(SyntheticTrace(spec, region_start=region,
                                         scale=effective_scale,
                                         seed=trace_seed + thread,
                                         footprint_cap_gb=footprint_cap_gb))
        region += footprint
    return traces, region


def build_group(group: str, scale: float = 1.0, seed: int = 0,
                threads_per_trace: int = 4,
                footprint_cap_gb: float = 0.0
                ) -> Tuple[List[Iterator[Request]], int]:
    """Streams for a whole trace group (paper §5.1 replay setup).

    All traces in the group run simultaneously, each replayed by
    ``threads_per_trace`` threads.  Returns (streams, total span in
    bytes) — size the origin volume to at least the span.
    """
    traces, region = _group_traces(group, scale, seed, threads_per_trace,
                                   footprint_cap_gb)
    return [trace.requests() for trace in traces], region


def build_group_chunks(group: str, scale: float = 1.0, seed: int = 0,
                       threads_per_trace: int = 4,
                       footprint_cap_gb: float = 0.0
                       ) -> Tuple[List[Iterator["np.ndarray"]], int]:
    """Chunked counterpart of :func:`build_group` (same traces, seeds
    and interleaving; each stream yields structured-array chunks)."""
    traces, region = _group_traces(group, scale, seed, threads_per_trace,
                                   footprint_cap_gb)
    return [trace.chunks() for trace in traces], region
