"""Loading and replaying real block traces (MSR-Cambridge format).

The paper replays traces from the SNIA IOTTA repository (MSR Cambridge,
trace id 388) and Microsoft Production Server collections.  Those files
cannot ship with this repository, but users who obtain them can replay
them directly: this module parses the standard MSR CSV format

    timestamp,hostname,disk,type,offset,size,latency

(timestamps in Windows 100 ns ticks, ``type`` is ``Read``/``Write``)
and adapts records into the simulator's request stream, preserving
arrival order.  A writer is included so synthetic traces can be
exported to the same format for inspection or use with other tools.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, TextIO

from repro.common.errors import ConfigError
from repro.common.types import Op, Request
from repro.common.units import PAGE_SIZE

WINDOWS_TICKS_PER_SECOND = 10_000_000


@dataclass(frozen=True)
class TraceRecord:
    """One parsed trace line."""

    timestamp: float       # seconds from the trace's start
    hostname: str
    disk: int
    op: Op
    offset: int
    size: int

    def to_request(self, align: bool = True) -> Request:
        offset, size = self.offset, self.size
        if align:
            end = offset + size
            offset -= offset % PAGE_SIZE
            size = max(PAGE_SIZE,
                       (end - offset + PAGE_SIZE - 1)
                       // PAGE_SIZE * PAGE_SIZE)
        return Request(self.op, offset, size)


def parse_msr_line(line: str) -> TraceRecord:
    """Parse one MSR CSV line into a :class:`TraceRecord`."""
    fields = next(csv.reader([line]))
    if len(fields) < 6:
        raise ConfigError(f"malformed MSR trace line: {line!r}")
    ticks = int(fields[0])
    op_text = fields[3].strip().lower()
    if op_text not in ("read", "write"):
        raise ConfigError(f"unknown op {fields[3]!r} in trace line")
    return TraceRecord(
        timestamp=ticks / WINDOWS_TICKS_PER_SECOND,
        hostname=fields[1],
        disk=int(fields[2]),
        op=Op.READ if op_text == "read" else Op.WRITE,
        offset=int(fields[4]),
        size=int(fields[5]),
    )


def read_msr_trace(source: TextIO) -> Iterator[TraceRecord]:
    """Stream records from an MSR-format CSV file object."""
    first_ticks: Optional[int] = None
    for line in source:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        record = parse_msr_line(line)
        if first_ticks is None:
            first_ticks = int(record.timestamp * WINDOWS_TICKS_PER_SECOND)
        rebased = (record.timestamp
                   - first_ticks / WINDOWS_TICKS_PER_SECOND)
        yield TraceRecord(rebased, record.hostname, record.disk,
                          record.op, record.offset, record.size)


def load_msr_trace(path: str) -> List[TraceRecord]:
    """Load a whole trace file into memory."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(read_msr_trace(handle))


def requests_from_records(records: Iterable[TraceRecord],
                          span_limit: int = 0,
                          align: bool = True) -> Iterator[Request]:
    """Turn records into simulator requests (optionally wrapped to a
    volume of ``span_limit`` bytes, for replay against smaller devices).
    """
    for record in records:
        request = record.to_request(align=align)
        if span_limit:
            if request.length > span_limit:
                continue
            offset = request.offset % span_limit
            offset -= offset % PAGE_SIZE
            if offset + request.length > span_limit:
                offset = span_limit - request.length
                offset -= offset % PAGE_SIZE
            request = Request(request.op, offset, request.length)
        yield request


def write_msr_trace(records: Iterable[TraceRecord], sink: TextIO,
                    hostname: str = "synthetic", disk: int = 0) -> int:
    """Export records in MSR CSV format; returns the line count."""
    count = 0
    for record in records:
        ticks = int(record.timestamp * WINDOWS_TICKS_PER_SECOND)
        op_name = "Read" if record.op is Op.READ else "Write"
        sink.write(f"{ticks},{record.hostname or hostname},"
                   f"{record.disk or disk},{op_name},"
                   f"{record.offset},{record.size},0\n")
        count += 1
    return count


def export_synthetic(trace_name: str, n_requests: int, sink: TextIO,
                     scale: float = 1.0, seed: int = 0,
                     interarrival: float = 1e-3) -> int:
    """Materialise one of the Table 6 synthetic traces as an MSR CSV."""
    from repro.workloads.msr import TRACES, SyntheticTrace
    if trace_name not in TRACES:
        raise ConfigError(f"unknown trace {trace_name!r}")
    trace = SyntheticTrace(TRACES[trace_name], scale=scale, seed=seed)
    records = []
    now = 0.0
    for i, request in enumerate(trace.requests()):
        if i >= n_requests:
            break
        records.append(TraceRecord(now, trace_name, 0, request.op,
                                   request.offset, request.length))
        now += interarrival
    return write_msr_trace(records, sink)
