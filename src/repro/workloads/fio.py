"""FIO-like synthetic workload generators (paper §3, Tables 2-3, Fig 1).

The paper's microbenchmarks use FIO with a Uniform Random distribution,
4 KiB requests, iodepth 32 and 4 threads; we model outstanding I/O as
one request stream per (thread x queue slot), each closed-loop.

Each generator comes in two shapes over one body: the ``*_chunks``
variant yields :data:`~repro.common.chunks.CHUNK_DTYPE` structured
arrays for the batched engine, and the classic per-request generator is
the same chunks flattened through
:func:`~repro.common.chunks.requests_from_chunk`.  Vector RNG draws
(``rng.integers(0, n, size=k)``) consume the PCG64 bitstream exactly as
k scalar draws do, so the request sequences are bit-identical to the
historical scalar generators — both shapes are constant-memory
iterators, never materializing the full workload.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.common.chunks import (DEFAULT_CHUNK_REQUESTS, OP_CODE, OP_FLUSH,
                                 OP_READ, OP_WRITE, empty_chunk, make_chunk,
                                 requests_from_chunk)
from repro.common.errors import ConfigError
from repro.common.types import Op, Request
from repro.common.units import KIB, PAGE_SIZE


def _with_flushes(chunk: np.ndarray, data_issued: int,
                  flush_every: int) -> np.ndarray:
    """Insert a FLUSH row after every ``flush_every``-th data row.

    ``data_issued`` is the data-request count before this chunk, so the
    cadence carries across chunk boundaries exactly like the scalar
    generator's running counter.
    """
    n = len(chunk)
    seq = np.arange(1, n + 1) + data_issued
    after = (seq % flush_every == 0)
    n_flush = int(np.count_nonzero(after))
    if n_flush == 0:
        return chunk
    # Destination of data row i shifts right by the flushes before it.
    shift = np.zeros(n, dtype=np.int64)
    np.cumsum(after[:-1], out=shift[1:])
    dest = np.arange(n) + shift
    out = empty_chunk(n + n_flush)
    out[dest] = chunk
    flush_dest = dest[after] + 1
    out["time"][flush_dest] = 0.0
    out["offset"][flush_dest] = 0
    out["length"][flush_dest] = 0
    out["op"][flush_dest] = OP_FLUSH
    out["origin"][flush_dest] = chunk["origin"][0]
    out["tenant"][flush_dest] = chunk["tenant"][0]
    return out


def uniform_random_chunks(span: int, request_size: int = 4 * KIB,
                          op: Op = Op.WRITE, seed: int = 0,
                          align: int = PAGE_SIZE,
                          flush_every: int = 0,
                          chunk_requests: int = DEFAULT_CHUNK_REQUESTS
                          ) -> Iterator[np.ndarray]:
    """Chunked :func:`uniform_random`: same draws, structured arrays."""
    if request_size <= 0 or span < request_size:
        raise ConfigError("span must cover at least one request")
    if chunk_requests <= 0:
        raise ConfigError("chunk_requests must be positive")
    rng = np.random.default_rng(seed)
    slots = max(1, (span - request_size) // align + 1)
    op_code = OP_CODE[op]
    issued = 0
    while True:
        offsets = rng.integers(0, slots, size=chunk_requests) * align
        chunk = make_chunk(offsets, request_size, op_code)
        if flush_every:
            chunk = _with_flushes(chunk, issued, flush_every)
            issued += chunk_requests
        yield chunk


def uniform_random(span: int, request_size: int = 4 * KIB,
                   op: Op = Op.WRITE, seed: int = 0,
                   align: int = PAGE_SIZE,
                   flush_every: int = 0) -> Iterator[Request]:
    """Uniformly random offsets over ``span`` bytes, forever.

    ``flush_every`` inserts a FLUSH after that many data requests
    (Table 3's flush-impact experiment).
    """
    for chunk in uniform_random_chunks(span, request_size, op, seed,
                                       align, flush_every):
        for request in requests_from_chunk(chunk):
            yield request


def sequential_chunks(span: int, request_size: int = 128 * KIB,
                      op: Op = Op.WRITE, start: int = 0,
                      flush_every_bytes: int = 0,
                      chunk_requests: int = DEFAULT_CHUNK_REQUESTS
                      ) -> Iterator[np.ndarray]:
    """Chunked :func:`sequential`: same offsets, structured arrays."""
    if request_size <= 0 or span < request_size:
        raise ConfigError("span must cover at least one request")
    if chunk_requests <= 0:
        raise ConfigError("chunk_requests must be positive")
    op_code = OP_CODE[op]
    offset = start
    since_flush = 0
    while True:
        # Replay the scalar wrap/flush state machine over one chunk's
        # worth of rows; both conditions depend only on running sums,
        # so a small python loop builds the columns without Requests.
        offsets = np.empty(chunk_requests, dtype=np.int64)
        flush_after = np.zeros(chunk_requests, dtype=bool)
        for i in range(chunk_requests):
            if offset + request_size > span:
                offset = 0
            offsets[i] = offset
            offset += request_size
            since_flush += request_size
            if flush_every_bytes and since_flush >= flush_every_bytes:
                since_flush = 0
                flush_after[i] = True
        chunk = make_chunk(offsets, request_size, op_code)
        n_flush = int(np.count_nonzero(flush_after))
        if n_flush:
            shift = np.zeros(chunk_requests, dtype=np.int64)
            np.cumsum(flush_after[:-1], out=shift[1:])
            dest = np.arange(chunk_requests) + shift
            out = empty_chunk(chunk_requests + n_flush)
            out[dest] = chunk
            flush_dest = dest[flush_after] + 1
            out["time"][flush_dest] = 0.0
            out["offset"][flush_dest] = 0
            out["length"][flush_dest] = 0
            out["op"][flush_dest] = OP_FLUSH
            out["origin"][flush_dest] = chunk["origin"][0]
            out["tenant"][flush_dest] = chunk["tenant"][0]
            chunk = out
        yield chunk


def sequential(span: int, request_size: int = 128 * KIB,
               op: Op = Op.WRITE, start: int = 0,
               flush_every_bytes: int = 0) -> Iterator[Request]:
    """Sequential stream wrapping around ``span``, forever.

    ``flush_every_bytes`` issues a FLUSH after each that-many bytes
    (the paper flushes each 512 KiB of sequential writes in Table 3).
    """
    for chunk in sequential_chunks(span, request_size, op, start,
                                   flush_every_bytes):
        for request in requests_from_chunk(chunk):
            yield request


def mixed(span: int, read_fraction: float, request_size: int = 4 * KIB,
          seed: int = 0) -> Iterator[Request]:
    """Uniform random mix of reads and writes.

    Kept scalar: the historical generator alternates offset and
    read/write draws per request, an RNG consumption order a columnar
    generator cannot reproduce.  :func:`mixed_chunks` is the chunked
    equivalent with its own (batch-order) draw sequence.
    """
    if not 0.0 <= read_fraction <= 1.0:
        raise ConfigError("read_fraction must be in [0,1]")
    rng = np.random.default_rng(seed)
    slots = max(1, (span - request_size) // PAGE_SIZE + 1)
    while True:
        offset = int(rng.integers(0, slots)) * PAGE_SIZE
        op = Op.READ if rng.random() < read_fraction else Op.WRITE
        yield Request(op, offset, request_size)


def mixed_chunks(span: int, read_fraction: float,
                 request_size: int = 4 * KIB, seed: int = 0,
                 chunk_requests: int = DEFAULT_CHUNK_REQUESTS
                 ) -> Iterator[np.ndarray]:
    """Chunked uniform random read/write mix.

    Draws offsets then ops column-wise per chunk, so the sequence
    differs from :func:`mixed` (documented there); within the chunked
    world it is the single source both engine paths share.
    """
    if not 0.0 <= read_fraction <= 1.0:
        raise ConfigError("read_fraction must be in [0,1]")
    if request_size <= 0 or span < request_size:
        raise ConfigError("span must cover at least one request")
    rng = np.random.default_rng(seed)
    slots = max(1, (span - request_size) // PAGE_SIZE + 1)
    while True:
        offsets = rng.integers(0, slots, size=chunk_requests) * PAGE_SIZE
        reads = rng.random(chunk_requests) < read_fraction
        chunk = make_chunk(offsets, request_size, OP_WRITE)
        chunk["op"][reads] = OP_READ
        yield chunk


def fio_job_streams(span: int, request_size: int = 4 * KIB,
                    op: Op = Op.WRITE, iodepth: int = 32,
                    threads: int = 4, seed: int = 0) -> List[Iterator[Request]]:
    """The paper's FIO setting: ``threads`` jobs at ``iodepth`` each.

    Returns iodepth x threads independent request streams; run them
    with :func:`repro.sim.engine.run_streams` for closed-loop replay.
    """
    return [
        uniform_random(span, request_size, op, seed=seed * 1000 + i)
        for i in range(iodepth * threads)
    ]


def fio_job_chunk_streams(span: int, request_size: int = 4 * KIB,
                          op: Op = Op.WRITE, iodepth: int = 32,
                          threads: int = 4, seed: int = 0
                          ) -> List[Iterator[np.ndarray]]:
    """Chunked :func:`fio_job_streams` — same seeds, same sequences."""
    return [
        uniform_random_chunks(span, request_size, op, seed=seed * 1000 + i)
        for i in range(iodepth * threads)
    ]
