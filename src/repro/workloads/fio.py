"""FIO-like synthetic workload generators (paper §3, Tables 2-3, Fig 1).

The paper's microbenchmarks use FIO with a Uniform Random distribution,
4 KiB requests, iodepth 32 and 4 threads; we model outstanding I/O as
one request stream per (thread x queue slot), each closed-loop.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.common.errors import ConfigError
from repro.common.types import Op, Request, flush
from repro.common.units import KIB, PAGE_SIZE


def uniform_random(span: int, request_size: int = 4 * KIB,
                   op: Op = Op.WRITE, seed: int = 0,
                   align: int = PAGE_SIZE,
                   flush_every: int = 0) -> Iterator[Request]:
    """Uniformly random offsets over ``span`` bytes, forever.

    ``flush_every`` inserts a FLUSH after that many data requests
    (Table 3's flush-impact experiment).
    """
    if request_size <= 0 or span < request_size:
        raise ConfigError("span must cover at least one request")
    rng = np.random.default_rng(seed)
    slots = max(1, (span - request_size) // align + 1)
    issued = 0
    while True:
        offset = int(rng.integers(0, slots)) * align
        yield Request(op, offset, request_size)
        issued += 1
        if flush_every and issued % flush_every == 0:
            yield flush()


def sequential(span: int, request_size: int = 128 * KIB,
               op: Op = Op.WRITE, start: int = 0,
               flush_every_bytes: int = 0) -> Iterator[Request]:
    """Sequential stream wrapping around ``span``, forever.

    ``flush_every_bytes`` issues a FLUSH after each that-many bytes
    (the paper flushes each 512 KiB of sequential writes in Table 3).
    """
    if request_size <= 0 or span < request_size:
        raise ConfigError("span must cover at least one request")
    offset = start
    since_flush = 0
    while True:
        if offset + request_size > span:
            offset = 0
        yield Request(op, offset, request_size)
        offset += request_size
        since_flush += request_size
        if flush_every_bytes and since_flush >= flush_every_bytes:
            since_flush = 0
            yield flush()


def mixed(span: int, read_fraction: float, request_size: int = 4 * KIB,
          seed: int = 0) -> Iterator[Request]:
    """Uniform random mix of reads and writes."""
    if not 0.0 <= read_fraction <= 1.0:
        raise ConfigError("read_fraction must be in [0,1]")
    rng = np.random.default_rng(seed)
    slots = max(1, (span - request_size) // PAGE_SIZE + 1)
    while True:
        offset = int(rng.integers(0, slots)) * PAGE_SIZE
        op = Op.READ if rng.random() < read_fraction else Op.WRITE
        yield Request(op, offset, request_size)


def fio_job_streams(span: int, request_size: int = 4 * KIB,
                    op: Op = Op.WRITE, iodepth: int = 32,
                    threads: int = 4, seed: int = 0) -> List[Iterator[Request]]:
    """The paper's FIO setting: ``threads`` jobs at ``iodepth`` each.

    Returns iodepth x threads independent request streams; run them
    with :func:`repro.sim.engine.run_streams` for closed-loop replay.
    """
    return [
        uniform_random(span, request_size, op, seed=seed * 1000 + i)
        for i in range(iodepth * threads)
    ]
