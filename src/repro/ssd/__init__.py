"""Commodity-SSD simulator: page-mapped FTL over erase-group
superblocks, timed device model, wear accounting."""
