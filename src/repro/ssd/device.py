"""Timed SSD block device: FTL + resource timelines + failure injection.

Timing model
------------
Two resources per drive:

* the **host link** (SATA/PCIe): serialized, per-command latency plus
  ``bytes / interface bandwidth``;
* the **NAND backend**: an aggregate pipeline whose throughput equals
  the drive's internal read/program bandwidth (channel parallelism is
  folded into the bandwidth figure).

Writes land in the volatile DRAM buffer and are acknowledged once the
host transfer finishes *and* the NAND backlog fits in the buffer — so
bursts are absorbed but sustained throughput converges to the NAND
program bandwidth divided by the FTL's write amplification, which is
exactly the behaviour Figures 2 and 4 of the paper rest on.  FLUSH
drains the backlog and pays a fixed checkpoint penalty, reproducing the
flush-cost findings of Table 3.
"""

from __future__ import annotations

from typing import Set

from repro.block.device import BlockDevice
from repro.block.lifecycle import QueuedDevice
from repro.common.errors import DeviceFailedError
from repro.common.types import IoOrigin, Op, Request
from repro.obs.events import FlushBarrier
from repro.sim.timeline import Link, Timeline
from repro.ssd.ftl import FtlOpResult, PageMappedFtl
from repro.ssd.spec import SsdSpec


class SSDDevice(QueuedDevice, BlockDevice):
    """One simulated SSD with a bounded host command queue."""

    def __init__(self, spec: SsdSpec, name: str = ""):
        super().__init__(spec.capacity, name or spec.name)
        self.init_queue(spec.queue_depth)
        self.spec = spec
        self.ftl = PageMappedFtl(
            logical_pages=spec.logical_pages,
            physical_pages=spec.physical_pages,
            superblock_pages=spec.superblock_pages,
        )
        self.ftl.owner = self.name
        self.link = Link(spec.interface_write_bw, spec.interface_latency)
        self.read_link = Link(spec.interface_read_bw, spec.interface_latency)
        self.nand = Timeline(1)
        # Host reads are serviced at read priority: controllers suspend
        # or interleave programs so reads do not queue behind the whole
        # buffered-write backlog.  Separate timeline = full priority.
        self.nand_reads = Timeline(1)
        self.failed = False
        self._buffer_slack = spec.buffer_size / spec.nand_prog_bw
        self._corrupted_pages: Set[int] = set()

    # ------------------------------------------------------------------
    # failure / corruption injection (consumed by RAID and SRC recovery)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Fail-stop the drive: every later request raises."""
        self.failed = True

    def repair(self, wipe: bool = True) -> None:
        """Bring a replacement drive online (optionally blank)."""
        self.failed = False
        if wipe:
            self.ftl = PageMappedFtl(
                logical_pages=self.spec.logical_pages,
                physical_pages=self.spec.physical_pages,
                superblock_pages=self.spec.superblock_pages,
            )
            self.ftl.owner = self.name
            self.ftl.obs = self.obs   # keep any attached recorder
            self._corrupted_pages.clear()

    def inject_corruption(self, offset: int, length: int) -> None:
        """Silently corrupt the stored data in a logical byte range."""
        self._corrupted_pages.update(Request(Op.READ, offset, length).pages())

    def corrupted_in(self, offset: int, length: int) -> Set[int]:
        """Corrupted logical page numbers inside a byte range."""
        span = set(Request(Op.READ, offset, length).pages())
        return span & self._corrupted_pages

    def clear_corruption(self, offset: int, length: int) -> None:
        self._corrupted_pages -= set(Request(Op.READ, offset, length).pages())

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def write_amplification(self) -> float:
        return self.ftl.counters.write_amplification

    @property
    def pages_programmed(self) -> int:
        return self.ftl.counters.total_pages_programmed

    @property
    def bytes_programmed(self) -> int:
        return self.pages_programmed * self.spec.page_size

    # ------------------------------------------------------------------
    # service
    # ------------------------------------------------------------------
    def _service(self, req: Request, now: float) -> float:
        if self.failed:
            raise DeviceFailedError(f"{self.name} has failed")
        if req.op is Op.FLUSH:
            return self._flush(now)
        if req.op is Op.TRIM:
            return self._trim(req, now)
        if req.op is Op.READ:
            return self._read(req, now)
        return self._write(req, now)

    def _npages(self, req: Request) -> int:
        page = self.spec.page_size
        first = req.offset // page
        last = (req.end + page - 1) // page
        return max(1, last - first)

    def _page_of(self, offset: int) -> int:
        return offset // self.spec.page_size

    def _write(self, req: Request, now: float) -> float:
        npages = self._npages(req)
        if self.obs.enabled:
            self.ftl.clock = now
        result = self.ftl.write(self._page_of(req.offset), npages)
        # Overwrites scrub any injected corruption for the range.
        if self._corrupted_pages:
            self.clear_corruption(req.offset, req.length)
        # Programming is pipelined with the host transfer: NAND work can
        # start as soon as the first pages stream into the DRAM buffer.
        xfer_begin, xfer_end = self.link.transfer(now, req.length)
        nand_time = self._nand_cost(result)
        _, nand_end = self.nand.acquire(xfer_begin, nand_time)
        nand_end = max(nand_end, xfer_end)
        if req.fua:
            _, fua_end = self.nand.acquire(nand_end, self.spec.flush_latency)
            return fua_end
        # Ack when the transfer is in and the backlog fits the buffer.
        return max(xfer_end, nand_end - self._buffer_slack)

    def _nand_cost(self, result: FtlOpResult) -> float:
        spec = self.spec
        page = spec.page_size
        cost = result.host_pages * page / spec.nand_prog_bw
        cost += result.gc_read_pages * page / spec.nand_read_bw
        cost += result.gc_prog_pages * page / spec.nand_prog_bw
        cost += result.erases * spec.erase_latency
        return cost

    def _read(self, req: Request, now: float) -> float:
        npages = self._npages(req)
        self.ftl.read(self._page_of(req.offset), npages)
        read_time = npages * self.spec.page_size / self.spec.nand_read_bw
        # Only host (foreground) reads ride the read-priority pipeline;
        # internal moves — GC copies, destage reads, rebuild scans —
        # interleave with the program backlog so they never starve the
        # latency-sensitive path.
        pipeline = (self.nand_reads if req.origin is IoOrigin.FOREGROUND
                    else self.nand)
        nand_begin, nand_end = pipeline.acquire(now, read_time)
        # The outbound transfer streams behind the NAND reads: it starts
        # once the first page is in the buffer and cannot finish before
        # the last page has been read.
        first_page = self.spec.timing.t_read
        _, out_end = self.read_link.transfer(nand_begin + first_page,
                                             req.length)
        return max(nand_end, out_end)

    def _trim(self, req: Request, now: float) -> float:
        npages = self._npages(req)
        self.ftl.trim(self._page_of(req.offset), npages)
        self.clear_corruption(req.offset, req.length)
        _, end = self.link.transfer(now, 512)  # command-only transfer
        return end

    def _flush(self, now: float) -> float:
        drain = max(now, self.nand.drain_time())
        _, end = self.nand.acquire(drain, self.spec.flush_latency)
        if self.obs.enabled:
            self.obs.emit(FlushBarrier(t=now, device=self.name))
        return end


def precondition(ssd: SSDDevice, fill_fraction: float = 1.0,
                 chunk: int = 0) -> None:
    """Sequentially fill an SSD so later writes hit steady-state GC.

    Mirrors the paper's preconditioning (§5.1): drives are TRIMmed, then
    sequentially filled with dummy data before measurement.
    """
    page = ssd.spec.page_size
    total_pages = int(ssd.spec.logical_pages * fill_fraction)
    step = (chunk // page) if chunk else ssd.spec.superblock_pages
    lpn = 0
    while lpn < total_pages:
        n = min(step, total_pages - lpn)
        ssd.ftl.write(lpn, n)
        lpn += n
