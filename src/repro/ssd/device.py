"""Timed SSD block device: FTL + resource timelines + failure injection.

Timing model
------------
Two resources per drive:

* the **host link** (SATA/PCIe): serialized, per-command latency plus
  ``bytes / interface bandwidth``;
* the **NAND backend**: an aggregate pipeline whose throughput equals
  the drive's internal read/program bandwidth (channel parallelism is
  folded into the bandwidth figure).

Writes land in the volatile DRAM buffer and are acknowledged once the
host transfer finishes *and* the NAND backlog fits in the buffer — so
bursts are absorbed but sustained throughput converges to the NAND
program bandwidth divided by the FTL's write amplification, which is
exactly the behaviour Figures 2 and 4 of the paper rest on.  FLUSH
drains the backlog and pays a fixed checkpoint penalty, reproducing the
flush-cost findings of Table 3.
"""

from __future__ import annotations

import heapq
from typing import Set

import numpy as np

from repro.block.device import BlockDevice
from repro.block.lifecycle import QueuedDevice
from repro.common.chunks import NO_TENANT, OP_WRITE, ORIGIN_FG
from repro.common.errors import DeviceFailedError
from repro.common.types import IoOrigin, Op, Request
from repro.obs.events import FlushBarrier
from repro.sim.timeline import Link, Timeline
from repro.ssd.ftl import FtlOpResult, PageMappedFtl
from repro.ssd.spec import SsdSpec


class SSDDevice(QueuedDevice, BlockDevice):
    """One simulated SSD with a bounded host command queue."""

    def __init__(self, spec: SsdSpec, name: str = ""):
        super().__init__(spec.capacity, name or spec.name)
        self.init_queue(spec.queue_depth)
        self.spec = spec
        self.ftl = PageMappedFtl(
            logical_pages=spec.logical_pages,
            physical_pages=spec.physical_pages,
            superblock_pages=spec.superblock_pages,
        )
        self.ftl.owner = self.name
        self.link = Link(spec.interface_write_bw, spec.interface_latency)
        self.read_link = Link(spec.interface_read_bw, spec.interface_latency)
        self.nand = Timeline(1)
        # Host reads are serviced at read priority: controllers suspend
        # or interleave programs so reads do not queue behind the whole
        # buffered-write backlog.  Separate timeline = full priority.
        self.nand_reads = Timeline(1)
        self.failed = False
        self._buffer_slack = spec.buffer_size / spec.nand_prog_bw
        self._corrupted_pages: Set[int] = set()

    # ------------------------------------------------------------------
    # failure / corruption injection (consumed by RAID and SRC recovery)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Fail-stop the drive: every later request raises."""
        self.failed = True

    def repair(self, wipe: bool = True) -> None:
        """Bring a replacement drive online (optionally blank)."""
        self.failed = False
        if wipe:
            self.ftl = PageMappedFtl(
                logical_pages=self.spec.logical_pages,
                physical_pages=self.spec.physical_pages,
                superblock_pages=self.spec.superblock_pages,
            )
            self.ftl.owner = self.name
            self.ftl.obs = self.obs   # keep any attached recorder
            self._corrupted_pages.clear()

    def inject_corruption(self, offset: int, length: int) -> None:
        """Silently corrupt the stored data in a logical byte range."""
        self._corrupted_pages.update(Request(Op.READ, offset, length).pages())

    def corrupted_in(self, offset: int, length: int) -> Set[int]:
        """Corrupted logical page numbers inside a byte range."""
        span = set(Request(Op.READ, offset, length).pages())
        return span & self._corrupted_pages

    def clear_corruption(self, offset: int, length: int) -> None:
        self._corrupted_pages -= set(Request(Op.READ, offset, length).pages())

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def write_amplification(self) -> float:
        return self.ftl.counters.write_amplification

    @property
    def pages_programmed(self) -> int:
        return self.ftl.counters.total_pages_programmed

    @property
    def bytes_programmed(self) -> int:
        return self.pages_programmed * self.spec.page_size

    # ------------------------------------------------------------------
    # service
    # ------------------------------------------------------------------
    def _service(self, req: Request, now: float) -> float:
        if self.failed:
            raise DeviceFailedError(f"{self.name} has failed")
        if req.op is Op.FLUSH:
            return self._flush(now)
        if req.op is Op.TRIM:
            return self._trim(req, now)
        if req.op is Op.READ:
            return self._read(req, now)
        return self._write(req, now)

    def _npages(self, req: Request) -> int:
        page = self.spec.page_size
        first = req.offset // page
        last = (req.end + page - 1) // page
        return max(1, last - first)

    def _page_of(self, offset: int) -> int:
        return offset // self.spec.page_size

    def _write(self, req: Request, now: float) -> float:
        npages = self._npages(req)
        if self.obs.enabled:
            self.ftl.clock = now
        result = self.ftl.write(self._page_of(req.offset), npages)
        # Overwrites scrub any injected corruption for the range.
        if self._corrupted_pages:
            self.clear_corruption(req.offset, req.length)
        # Programming is pipelined with the host transfer: NAND work can
        # start as soon as the first pages stream into the DRAM buffer.
        xfer_begin, xfer_end = self.link.transfer(now, req.length)
        nand_time = self._nand_cost(result)
        _, nand_end = self.nand.acquire(xfer_begin, nand_time)
        nand_end = max(nand_end, xfer_end)
        if req.fua:
            _, fua_end = self.nand.acquire(nand_end, self.spec.flush_latency)
            return fua_end
        # Ack when the transfer is in and the backlog fits the buffer.
        return max(xfer_end, nand_end - self._buffer_slack)

    def _nand_cost(self, result: FtlOpResult) -> float:
        spec = self.spec
        page = spec.page_size
        cost = result.host_pages * page / spec.nand_prog_bw
        cost += result.gc_read_pages * page / spec.nand_read_bw
        cost += result.gc_prog_pages * page / spec.nand_prog_bw
        cost += result.erases * spec.erase_latency
        return cost

    def _read(self, req: Request, now: float) -> float:
        npages = self._npages(req)
        self.ftl.read(self._page_of(req.offset), npages)
        read_time = npages * self.spec.page_size / self.spec.nand_read_bw
        # Only host (foreground) reads ride the read-priority pipeline;
        # internal moves — GC copies, destage reads, rebuild scans —
        # interleave with the program backlog so they never starve the
        # latency-sensitive path.
        pipeline = (self.nand_reads if req.origin is IoOrigin.FOREGROUND
                    else self.nand)
        nand_begin, nand_end = pipeline.acquire(now, read_time)
        # The outbound transfer streams behind the NAND reads: it starts
        # once the first page is in the buffer and cannot finish before
        # the last page has been read.
        first_page = self.spec.timing.t_read
        _, out_end = self.read_link.transfer(nand_begin + first_page,
                                             req.length)
        return max(nand_end, out_end)

    def _trim(self, req: Request, now: float) -> float:
        npages = self._npages(req)
        self.ftl.trim(self._page_of(req.offset), npages)
        self.clear_corruption(req.offset, req.length)
        _, end = self.link.transfer(now, 512)  # command-only transfer
        return end

    def _flush(self, now: float) -> float:
        drain = max(now, self.nand.drain_time())
        _, end = self.nand.acquire(drain, self.spec.flush_latency)
        if self.obs.enabled:
            self.obs.emit(FlushBarrier(t=now, device=self.name))
        return end

    # ------------------------------------------------------------------
    # lean batched entries (SRC seal path / chunk engine)
    # ------------------------------------------------------------------
    def submit_write_fast(self, offset: int, length: int, now: float,
                          origin: IoOrigin = IoOrigin.FOREGROUND) -> float:
        """Lean WRITE submission, bit-identical to ``submit``.

        Replays the exact ``_lifecycle`` sequence — stats, queue
        admission, :meth:`_write`, retire — without allocating a
        :class:`Request` or dispatching through ``_service``.  Callers
        (the SRC batched seal path) guarantee obs is off, the range is
        inside the device and ``fua`` is not needed; everything else,
        including queue-depth delays and fail-stop, behaves exactly as
        the generic path.
        """
        if self.failed:
            raise DeviceFailedError(f"{self.name} has failed")
        stats = self.stats
        stats.write_ops += 1
        stats.write_bytes += length
        by_origin = stats.bytes_by_origin
        key = origin.value
        by_origin[key] = by_origin.get(key, 0) + length
        begin = now
        depth = self.queue_depth
        if depth:
            q = self._inflight
            while q and q[0] <= now:
                heapq.heappop(q)
            while len(q) >= depth:
                popped = heapq.heappop(q)
                if popped > begin:
                    begin = popped
        page = self.spec.page_size
        first = offset // page
        last = (offset + length + page - 1) // page
        result = self.ftl.write(first, max(1, last - first))
        if self._corrupted_pages:
            self.clear_corruption(offset, length)
        xfer_begin, xfer_end = self.link.transfer(begin, length)
        _, nand_end = self.nand.acquire(xfer_begin, self._nand_cost(result))
        nand_end = max(nand_end, xfer_end)
        done = max(xfer_end, nand_end - self._buffer_slack)
        if depth:
            heapq.heappush(self._inflight, done)
            qs = self.qstats
            qs.submissions += 1
            outstanding = len(self._inflight)
            if outstanding > qs.max_outstanding:
                qs.max_outstanding = outstanding
            if begin > now:
                qs.queued_ops += 1
                qs.queue_delay_total += begin - now
        return done

    def submit_flush_fast(self, now: float) -> float:
        """Lean FLUSH submission; the barrier twin of
        :meth:`submit_write_fast` (obs off, guaranteed by the caller)."""
        if self.failed:
            raise DeviceFailedError(f"{self.name} has failed")
        self.stats.flush_ops += 1
        begin = now
        depth = self.queue_depth
        if depth:
            q = self._inflight
            while q and q[0] <= now:
                heapq.heappop(q)
            while len(q) >= depth:
                popped = heapq.heappop(q)
                if popped > begin:
                    begin = popped
        done = self._flush(begin)
        if depth:
            heapq.heappush(self._inflight, done)
            qs = self.qstats
            qs.submissions += 1
            outstanding = len(self._inflight)
            if outstanding > qs.max_outstanding:
                qs.max_outstanding = outstanding
            if begin > now:
                qs.queued_ops += 1
                qs.queue_delay_total += begin - now
        return done

    def submit_chunk(self, rows, start: float, think_time: float,
                     deadline: float, limit: int):
        """Vectorized closed-loop window (engine ``issue_chunk`` hook).

        Serves a conformant prefix of ``rows`` — aligned single-page
        foreground writes, untenanted, in range — in one call and
        returns ``(issue_times, done_times, n)``.  FTL state advances
        through :meth:`PageMappedFtl.write_batch` and per-row program
        times replay the exact ``_write`` recurrence (link pipeline,
        NAND backlog, buffer slack), so results are bit-identical to
        per-request submission; any non-conformant head row, armed
        corruption, observability, or an in-flight queue at window
        start declines to the scalar path.
        """
        if (self.failed or self.obs.enabled or self._corrupted_pages
                or think_time < 0.0):
            return None, None, 0
        depth = self.queue_depth
        if depth:
            # Drain completions exactly as admission would; any I/O
            # still outstanding at window start could delay admission
            # mid-window, which the closed-loop recurrence below cannot
            # see — decline and let the scalar path arbitrate.
            q = self._inflight
            while q and q[0] <= start:
                heapq.heappop(q)
            if q:
                return None, None, 0
        n_scan = len(rows)
        if limit and limit < n_scan:
            n_scan = limit
        if n_scan == 0:
            return None, None, 0
        page = self.spec.page_size
        scan = rows[:n_scan]
        offsets = scan["offset"]
        conf = ((scan["op"] == OP_WRITE)
                & (scan["length"] == page)
                & (scan["origin"] == ORIGIN_FG)
                & (scan["tenant"] == NO_TENANT)
                & (offsets >= 0)
                & (offsets % page == 0)
                & (offsets + page <= self.size))
        n_conf = n_scan if conf.all() else int(np.argmin(conf))
        if n_conf == 0:
            return None, None, 0
        lpns = offsets[:n_conf] // page
        base_cost = page / self.spec.nand_prog_bw
        read_bw = self.spec.nand_read_bw
        erase_latency = self.spec.erase_latency
        ftl_write = None
        if deadline == float("inf"):
            # No horizon to respect: the whole prefix will issue, so the
            # FTL can consume it in one batched call.
            gc_read, gc_prog, erases = self.ftl.write_batch(lpns)
            costs = np.full(n_conf, base_cost)
            hot = np.nonzero(gc_read | gc_prog | erases)[0]
            for i in hot.tolist():
                # Scalar float order of _nand_cost, term by term.
                cost = 1 * page / self.spec.nand_prog_bw
                cost += int(gc_read[i]) * page / read_bw
                cost += int(gc_prog[i]) * page / self.spec.nand_prog_bw
                cost += int(erases[i]) * erase_latency
                costs[i] = cost
            costs_list = costs.tolist()
        else:
            # A finite deadline can cut the window mid-prefix, and how
            # far we get depends on per-row times — advance the FTL row
            # by row so state never runs ahead of issued I/O.
            ftl_write = self.ftl.write
            lpns_list = lpns.tolist()
            costs_list = None
        link = self.link
        link_tl = link._timeline
        link_free = link_tl._free
        nand_free = self.nand._free
        link_head = link_free[0]
        nand_head = nand_free[0]
        link_busy = link_tl.busy_time
        nand_busy = self.nand.busy_time
        link_cost = link.latency + page / link.bandwidth
        slack = self._buffer_slack
        nand_cost = self._nand_cost
        issue_times = []
        done_times = []
        issue_append = issue_times.append
        done_append = done_times.append
        t = start
        for i in range(n_conf):
            if t >= deadline:
                break
            if ftl_write is not None:
                cost = nand_cost(ftl_write(lpns_list[i], 1))
            else:
                cost = costs_list[i]
            xfer_begin = t if t > link_head else link_head
            xfer_end = xfer_begin + link_cost
            link_head = xfer_end
            link_busy += link_cost
            nand_begin = xfer_begin if xfer_begin > nand_head else nand_head
            nand_end = nand_begin + cost
            nand_head = nand_end
            nand_busy += cost
            if xfer_end > nand_end:
                nand_end = xfer_end
            done = nand_end - slack
            if xfer_end > done:
                done = xfer_end
            issue_append(t)
            done_append(done)
            t = done + think_time
        n = len(issue_times)
        if n == 0:
            return None, None, 0
        if ftl_write is None and n < n_conf:
            raise AssertionError("batched FTL ran ahead of issued rows")
        link_free[0] = link_head
        nand_free[0] = nand_head
        link_tl.busy_time = link_busy
        self.nand.busy_time = nand_busy
        moved = n * page
        link.bytes_moved += moved
        stats = self.stats
        stats.write_ops += n
        stats.write_bytes += moved
        by_origin = stats.bytes_by_origin
        fg = IoOrigin.FOREGROUND.value
        by_origin[fg] = by_origin.get(fg, 0) + moved
        if depth:
            heapq.heappush(self._inflight, done_times[-1])
            qs = self.qstats
            qs.submissions += n
            if qs.max_outstanding < 1:
                qs.max_outstanding = 1
        return (np.asarray(issue_times), np.asarray(done_times), n)


def precondition(ssd: SSDDevice, fill_fraction: float = 1.0,
                 chunk: int = 0) -> None:
    """Sequentially fill an SSD so later writes hit steady-state GC.

    Mirrors the paper's preconditioning (§5.1): drives are TRIMmed, then
    sequentially filled with dummy data before measurement.
    """
    page = ssd.spec.page_size
    total_pages = int(ssd.spec.logical_pages * fill_fraction)
    step = (chunk // page) if chunk else ssd.spec.superblock_pages
    lpn = 0
    while lpn < total_pages:
        n = min(step, total_pages - lpn)
        ssd.ftl.write(lpn, n)
        lpn += n
