"""SSD device specifications and product presets.

Presets are calibrated to the product lines in the paper's Table 4 /
Table 12: SATA MLC (Samsung 840 Pro class — the prototype's cache
devices), SATA TLC, and a PCIe/NVMe enterprise drive.  Interface
bandwidths come from the vendor specification rows; sustained internal
bandwidth and the 256 MB erase group come from the paper's Figure 2
measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ConfigError
from repro.common.units import GIB, KIB, MB, MIB, MSEC, USEC
from repro.flash.timing import (MLC_TIMING, NVME_MLC_TIMING, NandTiming,
                                TLC_TIMING)


@dataclass(frozen=True)
class SsdSpec:
    """Everything needed to instantiate one simulated SSD."""

    name: str
    capacity: int                 # exported logical bytes
    spare_factor: float           # physical = capacity * (1 + spare)
    superblock_size: int          # erase group size (paper: 256 MB)
    interface_read_bw: float      # bytes/s across the host link
    interface_write_bw: float
    interface_latency: float      # per-command host link latency
    nand_read_bw: float           # aggregate internal read bytes/s
    nand_prog_bw: float           # aggregate internal program bytes/s
    erase_latency: float          # charged per superblock erase
    flush_latency: float          # FTL checkpoint cost of a FLUSH/FUA
    buffer_size: int              # volatile DRAM write buffer
    timing: NandTiming = MLC_TIMING
    page_size: int = 4 * KIB
    queue_depth: int = 32         # host-visible command slots (NCQ = 32)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError("capacity must be positive")
        if self.queue_depth < 0:
            raise ConfigError("queue_depth must be >= 0 (0 = unbounded)")
        if not 0.0 < self.spare_factor < 1.0:
            raise ConfigError(
                f"spare_factor must be in (0,1), got {self.spare_factor}")
        if self.superblock_size % self.page_size:
            raise ConfigError("superblock must be a whole number of pages")

    @property
    def logical_pages(self) -> int:
        return self.capacity // self.page_size

    @property
    def physical_pages(self) -> int:
        raw = int(self.capacity * (1 + self.spare_factor))
        return raw // self.page_size

    @property
    def superblock_pages(self) -> int:
        return self.superblock_size // self.page_size

    @property
    def endurance(self) -> int:
        return self.timing.endurance

    def scaled(self, factor: float) -> "SsdSpec":
        """Shrink capacity-like quantities by ``factor`` (0 < f <= 1).

        Bandwidths and latencies are untouched, so throughput numbers
        stay calibrated while experiments run proportionally faster.
        """
        if not 0 < factor <= 1:
            raise ConfigError(f"scale factor must be in (0,1], got {factor}")
        page = self.page_size

        def scale(nbytes: int) -> int:
            scaled_val = max(page, int(nbytes * factor))
            return scaled_val - scaled_val % page

        return replace(
            self,
            capacity=scale(self.capacity),
            superblock_size=scale(self.superblock_size),
            buffer_size=scale(self.buffer_size),
            # The erase charge is per superblock; a scaled-down
            # superblock must cost proportionally less or the per-byte
            # erase overhead would be inflated by 1/factor.
            erase_latency=self.erase_latency * factor,
        )


# The prototype's cache device: Samsung 840 Pro 128 GB (Table 1, Table 4
# SSD-A 128 GB row: SR 530 / SW 390 MB/s).  Erase group 256 MB (Fig. 2).
SATA_MLC_128 = SsdSpec(
    name="sata-mlc-128",
    capacity=128 * GIB,
    spare_factor=0.07,
    superblock_size=256 * MIB,
    interface_read_bw=530 * MB,
    interface_write_bw=390 * MB,
    interface_latency=20 * USEC,
    nand_read_bw=1600 * MB,
    nand_prog_bw=420 * MB,
    erase_latency=2 * MSEC,
    flush_latency=3.5 * MSEC,
    buffer_size=256 * MIB,
    timing=MLC_TIMING,
)

# SATA TLC (840 EVO class): same interface, slower flash, 1K endurance.
SATA_TLC_128 = SsdSpec(
    name="sata-tlc-128",
    capacity=128 * GIB,
    spare_factor=0.07,
    superblock_size=256 * MIB,
    interface_read_bw=530 * MB,
    interface_write_bw=390 * MB,
    interface_latency=20 * USEC,
    nand_read_bw=1400 * MB,
    nand_prog_bw=300 * MB,
    erase_latency=2.5 * MSEC,
    flush_latency=3.5 * MSEC,
    buffer_size=256 * MIB,
    timing=TLC_TIMING,
)

# Table 4 SSD-B 400 GB row: PCIe NVMe, SR 2700 / SW 1080 MB/s.
NVME_MLC_400 = SsdSpec(
    name="nvme-mlc-400",
    capacity=400 * GIB,
    spare_factor=0.25,
    superblock_size=512 * MIB,
    interface_read_bw=2700 * MB,
    interface_write_bw=1080 * MB,
    interface_latency=8 * USEC,
    nand_read_bw=4000 * MB,
    nand_prog_bw=1200 * MB,
    erase_latency=2 * MSEC,
    flush_latency=1.0 * MSEC,
    buffer_size=512 * MIB,
    timing=NVME_MLC_TIMING,
    queue_depth=256,           # NVMe submission queues run far deeper
)
