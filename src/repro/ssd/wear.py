"""Wear accounting and lifetime projection for simulated SSDs.

The FTL already counts every program and erase; this module turns those
counters into the quantities operators (and Figure 6) care about:
per-superblock erase distribution, wear-evenness, consumed endurance,
and remaining-life projections under an assumed write rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigError
from repro.ssd.device import SSDDevice


@dataclass(frozen=True)
class WearReport:
    """Snapshot of one drive's wear state."""

    host_bytes_written: int
    bytes_programmed: int
    write_amplification: float
    erase_count_min: int
    erase_count_max: int
    erase_count_mean: float
    endurance: int
    consumed_fraction: float     # of total P/E budget
    wear_evenness: float         # mean/max erase count (1.0 = perfect)

    @property
    def remaining_fraction(self) -> float:
        return max(0.0, 1.0 - self.consumed_fraction)


def wear_report(ssd: SSDDevice) -> WearReport:
    """Summarise a drive's wear from its FTL counters."""
    erases = ssd.ftl.erase_count
    max_erase = int(erases.max()) if erases.size else 0
    mean_erase = float(erases.mean()) if erases.size else 0.0
    endurance = ssd.spec.endurance
    budget_pages = ssd.ftl.physical_pages * endurance
    consumed = (ssd.ftl.counters.total_pages_programmed / budget_pages
                if budget_pages else 0.0)
    evenness = (mean_erase / max_erase) if max_erase else 1.0
    host_pages = ssd.ftl.counters.host_pages_written
    return WearReport(
        host_bytes_written=host_pages * ssd.spec.page_size,
        bytes_programmed=ssd.bytes_programmed,
        write_amplification=ssd.write_amplification,
        erase_count_min=int(erases.min()) if erases.size else 0,
        erase_count_max=max_erase,
        erase_count_mean=mean_erase,
        endurance=endurance,
        consumed_fraction=min(1.0, consumed),
        wear_evenness=evenness,
    )


def projected_lifetime_seconds(ssd: SSDDevice, elapsed: float) -> float:
    """Extrapolate time to wear-out from the run's observed write rate.

    ``elapsed`` is the simulated time over which the drive accumulated
    its current program count.  Returns ``inf`` if nothing was written.
    """
    if elapsed <= 0:
        raise ConfigError("elapsed must be positive")
    report = wear_report(ssd)
    if report.consumed_fraction <= 0:
        return float("inf")
    rate = report.consumed_fraction / elapsed   # budget fraction per sec
    return report.remaining_fraction / rate


def array_wear_summary(ssds: "list[SSDDevice]") -> dict:
    """Aggregate wear view across an array (for operator dashboards)."""
    reports = [wear_report(s) for s in ssds]
    return {
        "drives": len(reports),
        "total_host_bytes": sum(r.host_bytes_written for r in reports),
        "total_programmed": sum(r.bytes_programmed for r in reports),
        "max_consumed_fraction": max((r.consumed_fraction
                                      for r in reports), default=0.0),
        "worst_evenness": min((r.wear_evenness for r in reports),
                              default=1.0),
        "mean_write_amplification": (
            float(np.mean([r.write_amplification for r in reports]))
            if reports else 1.0),
    }
