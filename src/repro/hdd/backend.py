"""Primary storage: RAID-10 disk array behind an iSCSI link.

Reproduces the paper's backend (Table 1): eight 2 TB 7.2K RPM disks in
RAID-10, exported over 1 Gbps iSCSI.  The network link serializes all
transfers (1 Gbps ~ 117 MiB/s), the array stripes across mirror pairs
and balances reads between mirror halves.
"""

from __future__ import annotations

from typing import List

from repro.block.device import BlockDevice
from repro.common.errors import ConfigError
from repro.common.types import Op, Request
from repro.hdd.disk import DiskDevice, DiskSpec
from repro.obs.events import FlushBarrier
from repro.sim.timeline import Link
from repro.common.units import KIB, USEC


class Raid10Array(BlockDevice):
    """Striped mirrors: disks are paired, pairs are striped."""

    def __init__(self, disks: List[DiskDevice], chunk_size: int = 64 * KIB,
                 name: str = "raid10"):
        if len(disks) < 2 or len(disks) % 2:
            raise ConfigError("RAID-10 needs an even number (>=2) of disks")
        pairs = len(disks) // 2
        super().__init__(disks[0].size * pairs, name)
        self.disks = disks
        self.pairs = pairs
        self.chunk_size = chunk_size
        self._read_toggle = 0

    def _split(self, req: Request):
        """Yield (pair_index, pair_offset, length) chunks of the request."""
        offset, remaining = req.offset, req.length
        while remaining > 0:
            chunk_index = offset // self.chunk_size
            within = offset % self.chunk_size
            take = min(self.chunk_size - within, remaining)
            pair = chunk_index % self.pairs
            row = chunk_index // self.pairs
            pair_offset = row * self.chunk_size + within
            yield pair, pair_offset, take
            offset += take
            remaining -= take

    def _service(self, req: Request, now: float) -> float:
        if req.op is Op.FLUSH:
            return max(d.submit(Request(Op.FLUSH), now) for d in self.disks)
        end = now
        for pair, pair_offset, length in self._split(req):
            mirror_a = self.disks[2 * pair]
            mirror_b = self.disks[2 * pair + 1]
            sub = Request(req.op, pair_offset, length, fua=req.fua,
                          origin=req.origin, tenant=req.tenant)
            if req.op is Op.READ:
                self._read_toggle ^= 1
                disk = mirror_a if self._read_toggle else mirror_b
                end = max(end, disk.submit(sub, now))
            else:  # WRITE and TRIM go to both mirror halves
                end = max(end, mirror_a.submit(sub, now))
                end = max(end, mirror_b.submit(sub, now))
        return end


class PrimaryStorage(BlockDevice):
    """The iSCSI-attached backend volume."""

    def __init__(self, n_disks: int = 8, disk_spec: DiskSpec = DiskSpec(),
                 network_bw: float = 125e6, network_latency: float = 200 * USEC,
                 chunk_size: int = 64 * KIB, name: str = "primary"):
        disks = [DiskDevice(disk_spec, name=f"{name}-disk{i}")
                 for i in range(n_disks)]
        self.array = Raid10Array(disks, chunk_size, name=f"{name}-raid10")
        super().__init__(self.array.size, name)
        self.link = Link(network_bw, network_latency)

    @property
    def disks(self) -> List[DiskDevice]:
        return self.array.disks

    def _service(self, req: Request, now: float) -> float:
        if req.op is Op.FLUSH:
            if self.obs.enabled:
                self.obs.emit(FlushBarrier(t=now, device=self.name))
            _, link_end = self.link.transfer(now, 64)  # command frame
            return self.array.submit(req, link_end)
        if req.op is Op.WRITE:
            _, link_end = self.link.transfer(now, req.length)
            return self.array.submit(req, link_end)
        if req.op is Op.READ:
            array_end = self.array.submit(req, now)
            _, link_end = self.link.transfer(array_end, req.length)
            return link_end
        return self.array.submit(req, now)  # TRIM
