"""Primary storage substrate: mechanical disks, RAID-10, iSCSI."""
