"""Mechanical disk model.

Expected-value mechanical timing with two realism refinements that the
paper's measured baselines calibrate:

* **Queue reordering (NCQ/elevator):** the drive holds a queue and
  services it in positional order, so under concurrent load the average
  positioning cost is well below a blind seek + half rotation.  We keep
  the last few head positions and charge no positioning for requests
  landing near any of them, and a discounted positioning otherwise.
* **On-disk write cache:** writes are staged in the drive's cache and
  destaged in sorted batches, cutting their effective positioning cost
  further.  Table 2 of the paper (Flashcache write-through sustaining
  ~1.4K IOPS over the 8-disk RAID-10) pins this discount at roughly
  0.2x of the naive positioning cost.

Parameters default to the 2 TB 7.2K RPM drives of the paper's backend
(Table 1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.block.device import BlockDevice
from repro.block.lifecycle import QueuedDevice
from repro.common.errors import ConfigError
from repro.common.types import Op, Request
from repro.sim.timeline import Timeline
from repro.common.units import MB, MIB, MSEC, TIB


@dataclass(frozen=True)
class DiskSpec:
    """Mechanical drive parameters."""

    name: str = "hdd-7200"
    capacity: int = 2 * TIB
    avg_seek: float = 8.5 * MSEC
    rpm: int = 7200
    transfer_bw: float = 140 * MB        # outer-track media rate
    sequential_window: int = 1 * MIB     # "near" threshold for locality
    recent_positions: int = 32           # NCQ reordering depth proxy
    read_positioning_factor: float = 0.5   # elevator discount for reads
    write_positioning_factor: float = 0.2  # write-cache + sorted destage
    queue_depth: int = 32                  # NCQ command slots (0 = unbounded)

    def __post_init__(self) -> None:
        if self.rpm <= 0 or self.capacity <= 0 or self.transfer_bw <= 0:
            raise ConfigError("disk parameters must be positive")
        if self.queue_depth < 0:
            raise ConfigError("queue_depth must be >= 0 (0 = unbounded)")
        if not 0 < self.read_positioning_factor <= 1:
            raise ConfigError("read_positioning_factor must be in (0,1]")
        if not 0 < self.write_positioning_factor <= 1:
            raise ConfigError("write_positioning_factor must be in (0,1]")

    @property
    def avg_rotation(self) -> float:
        """Expected rotational latency: half a revolution."""
        return 0.5 * 60.0 / self.rpm


class DiskDevice(QueuedDevice, BlockDevice):
    """One simulated spinning disk (FCFS with locality credit)."""

    def __init__(self, spec: DiskSpec = DiskSpec(), name: str = ""):
        super().__init__(spec.capacity, name or spec.name)
        self.init_queue(spec.queue_depth)
        self.spec = spec
        self.arm = Timeline(1)
        self._recent: deque = deque(maxlen=spec.recent_positions)

    def _positioning(self, req: Request) -> float:
        near = any(abs(req.offset - pos) <= self.spec.sequential_window
                   for pos in self._recent)
        if near:
            return 0.0
        cost = self.spec.avg_seek + self.spec.avg_rotation
        if req.op is Op.WRITE:
            return cost * self.spec.write_positioning_factor
        return cost * self.spec.read_positioning_factor

    def _service(self, req: Request, now: float) -> float:
        if req.op is Op.FLUSH:
            # Drain the on-disk write cache: wait for the arm to go idle.
            _, end = self.arm.acquire(max(now, self.arm.drain_time()), 0.0)
            return end
        if req.op is Op.TRIM:
            return now  # no-op on spinning media
        duration = self._positioning(req) + req.length / self.spec.transfer_bw
        self._recent.append(req.end)
        _, end = self.arm.acquire(now, duration)
        return end
