"""Lifetime estimation and cost-effectiveness metrics (paper §5.3).

Figure 6's lifetime numbers follow the standard endurance budget model
(Jeong et al., FAST'14): an SSD set with total capacity C and rated
endurance E P/E cycles absorbs ``C x E`` bytes of programs before
wear-out; with a daily host-write volume D amplified by the measured
write-amplification factor W, the expected days to live are

    lifetime_days = (C x E) / (D x W).

The paper assumes D = 512 GB/day; e.g. the A-MLC set (512 GB x 3000)
at W ~ 1.4 yields the ~2140 days quoted for the Write group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import GB

PAPER_DAILY_WRITES = 512 * GB  # §5.3 assumption


def lifetime_days(total_capacity: int, endurance: int,
                  waf: float, daily_writes: int = PAPER_DAILY_WRITES) -> float:
    """Expected days to live under the endurance budget model."""
    if total_capacity <= 0 or endurance <= 0:
        raise ConfigError("capacity and endurance must be positive")
    if waf <= 0:
        raise ConfigError("write amplification must be positive")
    if daily_writes <= 0:
        raise ConfigError("daily write volume must be positive")
    budget = total_capacity * endurance
    return budget / (daily_writes * waf)


@dataclass(frozen=True)
class CostEffectiveness:
    """One bar group of Figure 6 for one product and workload."""

    product: str
    workload: str
    throughput_mb_s: float
    set_cost_usd: float
    lifetime_days: float

    @property
    def perf_per_dollar(self) -> float:
        """(MB/s)/$ — Figure 6(c)."""
        return self.throughput_mb_s / self.set_cost_usd

    @property
    def lifetime_per_dollar(self) -> float:
        """days/$ — Figure 6(d)."""
        return self.lifetime_days / self.set_cost_usd


def flash_waf(app_write_bytes: int, flash_programmed_bytes: int) -> float:
    """End-to-end write amplification: flash programs per app write.

    Folds together cache-layer amplification (parity, metadata, GC
    copies) and FTL-internal amplification, which is what wears the
    flash out.
    """
    if app_write_bytes <= 0:
        return 1.0
    return max(1.0, flash_programmed_bytes / app_write_bytes)
