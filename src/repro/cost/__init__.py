"""Cost-effectiveness model: product sheets (Tables 4/12) and the
endurance-budget lifetime estimation behind Figure 6."""
