"""SSD product sheets (paper Tables 4 and 12).

Prices and specification values are the ones published in the paper;
each Table 12 configuration maps to an :class:`~repro.ssd.spec.SsdSpec`
so cost-effectiveness experiments (Figure 6) can run the same workloads
over each product's simulated device.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.common.units import GB, GIB, MB
from repro.flash.timing import MLC_TIMING, TLC_TIMING
from repro.ssd.spec import NVME_MLC_400, SATA_MLC_128, SATA_TLC_128, SsdSpec


@dataclass(frozen=True)
class SpecRow:
    """One column of Table 4 (vendor specification sheet)."""

    family: str           # "SSD-A" (SATA) or "SSD-B" (PCIe/NVMe)
    interface: str
    capacity_gb: int
    price_usd: int
    seq_read_mb: int
    seq_write_mb: int
    rand_read_kiops: int
    rand_write_kiops: int


# Table 4, verbatim.
TABLE4: List[SpecRow] = [
    SpecRow("SSD-A", "SATA 3.0", 128, 129, 530, 390, 97, 90),
    SpecRow("SSD-A", "SATA 3.0", 256, 206, 540, 520, 100, 90),
    SpecRow("SSD-A", "SATA 3.0", 512, 435, 540, 520, 100, 90),
    SpecRow("SSD-B", "PCI-e Gen 3.0", 400, 922, 2700, 1080, 450, 75),
    SpecRow("SSD-B", "PCI-e Gen 3.0", 800, 1398, 2800, 1900, 460, 90),
    SpecRow("SSD-B", "PCI-e Gen 3.0", 1600, 3796, 2800, 1900, 450, 150),
    SpecRow("SSD-B", "PCI-e Gen 3.0", 2000, 4250, 2800, 2000, 450, 175),
]


@dataclass(frozen=True)
class Product:
    """One column of Table 12 (the Figure 6 contenders)."""

    key: str              # e.g. "A-MLC(SATA)"
    company: str
    nand: str             # "MLC" | "TLC"
    interface: str        # "SATA" | "NVMe"
    n_units: int          # SSDs in the array
    unit_capacity: int    # bytes per SSD
    set_cost_usd: float   # cost of the whole set
    endurance: int        # rated P/E cycles
    year: int
    spec: SsdSpec         # simulated device for each unit

    @property
    def total_capacity(self) -> int:
        return self.n_units * self.unit_capacity

    @property
    def gb_per_dollar(self) -> float:
        return (self.total_capacity / GB) / self.set_cost_usd

    @property
    def uses_parity(self) -> bool:
        """RAID-5 for the SATA arrays; single NVMe runs without parity."""
        return self.n_units >= 3


def _sata(spec: SsdSpec, capacity: int, prog_bw: float,
          timing, name: str) -> SsdSpec:
    return replace(spec, name=name, capacity=capacity,
                   nand_prog_bw=prog_bw, timing=timing)


# Table 12, with each column bound to a simulated device.  Company A's
# drives are the prototype's 840 Pro class; company B's are slightly
# newer SATA parts with similar envelopes; company C's is the NVMe part
# of Table 4 (400 GB row).
PRODUCTS: Dict[str, Product] = {
    p.key: p for p in [
        Product(
            key="A-MLC(SATA)", company="A", nand="MLC", interface="SATA",
            n_units=4, unit_capacity=128 * GIB, set_cost_usd=418,
            endurance=3000, year=2012,
            spec=_sata(SATA_MLC_128, 128 * GIB, 420 * MB, MLC_TIMING,
                       "a-mlc-128")),
        Product(
            key="A-TLC(SATA)", company="A", nand="TLC", interface="SATA",
            n_units=4, unit_capacity=120 * GIB, set_cost_usd=272,
            endurance=1000, year=2013,
            spec=_sata(SATA_TLC_128, 120 * GIB, 300 * MB, TLC_TIMING,
                       "a-tlc-120")),
        Product(
            key="B-MLC(SATA)", company="B", nand="MLC", interface="SATA",
            n_units=4, unit_capacity=128 * GIB, set_cost_usd=374,
            endurance=3000, year=2014,
            spec=_sata(SATA_MLC_128, 128 * GIB, 440 * MB, MLC_TIMING,
                       "b-mlc-128")),
        Product(
            key="B-TLC(SATA)", company="B", nand="TLC", interface="SATA",
            n_units=4, unit_capacity=128 * GIB, set_cost_usd=225,
            endurance=1000, year=2014,
            spec=_sata(SATA_TLC_128, 128 * GIB, 320 * MB, TLC_TIMING,
                       "b-tlc-128")),
        Product(
            key="C-MLC(NVMe)", company="C", nand="MLC", interface="NVMe",
            n_units=1, unit_capacity=400 * GIB, set_cost_usd=469,
            endurance=3000, year=2015,
            spec=NVME_MLC_400),
    ]
}

PRODUCT_ORDER = ["A-MLC(SATA)", "A-TLC(SATA)", "B-MLC(SATA)",
                 "B-TLC(SATA)", "C-MLC(NVMe)"]
