"""repro.api — the stable public surface of the reproduction.

Everything a consumer (the CLI, the examples, external scripts) needs
lives here under one import path::

    from repro.api import open_array, QosSpec, Request, Op

    array = open_array(scale=1 / 64)
    vol = array.create_volume("tenant-a", size=256 * MIB,
                              qos=QosSpec(min_share=0.2))
    done = vol.submit(Request(Op.WRITE, 0, 4096), now=0.0)
    print(array.stats()["tenants"])

Internal module paths (``repro.core.*``, ``repro.harness.exp_*``) may
move between releases; names exported here will not.  The facade
groups four things:

* **array lifecycle** — :func:`open_array` builds the paper's platform
  (preconditioned SSD array, iSCSI RAID-10 origin, SRC on top) and
  returns an :class:`Array` handle with volume and stats methods;
* **types** — requests, configs, QoS classes, result containers;
* **experiments** — the :data:`EXPERIMENTS` registry and
  :func:`run_experiment` / :func:`result_violations` used by the CLI
  and CI;
* **observability** — recorder attach/use and the ``collect`` harvest.
"""

from __future__ import annotations

import importlib
import inspect
from typing import Dict, List, Optional

from repro.baselines.common import WritePolicy
from repro.cluster import (ClusterConfig, ClusterStats, ClusterVolume,
                           MigrationLedger, ShardRouter)
from repro.common.errors import ConfigError, ReproError
from repro.common.types import (IoOrigin, IoStats, LatencyStats, Op,
                                Request, flush)
from repro.common.units import GIB, KIB, MIB, PAGE_SIZE, mb_per_sec
from repro.core.config import (CleanRedundancy, FaultConfig, FlushPoint,
                               GcScheme, QosConfig, ReclaimConfig,
                               RepairConfig, SrcConfig, VictimPolicy)
from repro.core.src import SrcCache
from repro.harness.context import (CACHE_SPACE, DEFAULT_SCALE, QUICK_SCALE,
                                   ExperimentScale, build_bcache,
                                   build_cluster, build_flashcache,
                                   build_shard, build_src)
from repro.harness.results import ExperimentResult
from repro.obs import ObsRecorder, attach, collect, events_to_csv, to_json, use
from repro.ssd.spec import NVME_MLC_400, SATA_MLC_128, SATA_TLC_128, SsdSpec
from repro.tenancy import QosSpec, TenantRegistry, TenantStats, Volume
from repro.workloads.replay import replay_group

# ----------------------------------------------------------------------
# experiment registry (the CLI renders this; CI drives it)
# ----------------------------------------------------------------------
EXPERIMENTS: Dict[str, "tuple[str, str]"] = {
    "table2": ("repro.harness.exp_table2", "WT vs WB, single SSD"),
    "table3": ("repro.harness.exp_table3", "flush command impact"),
    "fig1": ("repro.harness.exp_fig1", "caches over RAID levels"),
    "fig2": ("repro.harness.exp_fig2", "erase group size"),
    "fig4": ("repro.harness.exp_fig4", "SRC vs erase group size"),
    "table8": ("repro.harness.exp_table8", "free space management"),
    "fig5": ("repro.harness.exp_fig5", "UMAX sweep"),
    "table9": ("repro.harness.exp_table9", "PC vs NPC"),
    "table10": ("repro.harness.exp_table10", "SRC RAID level"),
    "table11": ("repro.harness.exp_table11", "flush control"),
    "fig6": ("repro.harness.exp_fig6", "cost-effectiveness"),
    "fig7": ("repro.harness.exp_fig7", "SRC vs existing solutions"),
    "table6": ("repro.harness.exp_table6", "trace characteristics"),
    "tables4-12": ("repro.harness.exp_tables4_12", "product sheets"),
    "ablation": ("repro.harness.exp_ablation", "design ablations"),
    "writeboost": ("repro.harness.exp_writeboost",
                   "supplementary: SRC vs DM-Writeboost lineage"),
    "latency": ("repro.harness.exp_latency",
                "supplementary: latency percentiles per scheme"),
    "tenants": ("repro.harness.exp_tenants",
                "tenant isolation: QoS shares vs a write whale"),
    "cluster": ("repro.harness.exp_cluster",
                "sharded cluster: scaling, rebalance, blast radius"),
}


def run_experiment(exp_id: str, es: ExperimentScale = DEFAULT_SCALE,
                   jobs: int = 1) -> List[ExperimentResult]:
    """Run one experiment id, returning its ExperimentResult(s).

    ``jobs`` fans independent sweep points over a process pool for the
    experiments whose ``run`` accepts it; others run serially
    regardless — results are identical either way.
    """
    if exp_id not in EXPERIMENTS:
        raise ConfigError(
            f"unknown experiment {exp_id!r}; known: "
            f"{', '.join(sorted(EXPERIMENTS))}")
    module_name, _ = EXPERIMENTS[exp_id]
    module = importlib.import_module(module_name)
    if exp_id == "tables4-12":
        return [module.run_table4(), module.run_table12()]
    if jobs != 1 and "jobs" in inspect.signature(module.run).parameters:
        return [module.run(es, jobs=jobs)]
    return [module.run(es)]


def result_violations(result: ExperimentResult) -> List[str]:
    """Acceptance failures (``violation:`` notes) recorded in a result."""
    return [n for n in result.notes if n.startswith("violation:")]


def run_faults(es: ExperimentScale = DEFAULT_SCALE, seeds: int = 5,
               points: int = 50,
               demonstrate_break: bool = False) -> ExperimentResult:
    """The seeded crash-point torture harness (``repro faults``)."""
    from repro.harness import exp_faults
    return exp_faults.run(es, seeds=seeds, points=points,
                          demonstrate_break=demonstrate_break)


def run_rebuild(es: ExperimentScale = DEFAULT_SCALE) -> ExperimentResult:
    """The hot-spare rebuild sweep + scrub demo (``repro rebuild``)."""
    from repro.harness import exp_rebuild
    return exp_rebuild.run(es)


def run_cluster(es: ExperimentScale = DEFAULT_SCALE,
                jobs: int = 1) -> ExperimentResult:
    """The sharded-cluster acceptance suite (``repro cluster``)."""
    from repro.harness import exp_cluster
    return exp_cluster.run(es, jobs=jobs)


def run_chaos(scenarios: Optional[List[str]] = None,
              budget: Optional[int] = 40,
              frontier_path: Optional[str] = None,
              seed: int = 0, ops: Optional[int] = None,
              composed: bool = True) -> dict:
    """The chaos verification layer (``repro chaos``).

    Explores up to ``budget`` unexplored crash points per scenario
    (``None`` = exhaust the space, the nightly mode) against the
    resumable frontier at ``frontier_path``, then runs one
    composed-fault scheduler pass.  Returns a JSON-ready payload whose
    ``"ok"`` is False iff any oracle, invariant, or differential
    violation was found.
    """
    from repro.chaos import (ChaosScheduler, CrashFrontier,
                             CrashPointExplorer, SCENARIOS)
    names = list(scenarios) if scenarios else list(SCENARIOS)
    explorer = CrashPointExplorer(
        seed=seed, **({"ops": ops} if ops else {}),
        frontier=CrashFrontier(frontier_path))
    payload: dict = {"scenarios": {}, "composed": None, "ok": True}
    for name in names:
        report = explorer.explore(name, budget=budget)
        payload["scenarios"][name] = {
            "discovered": report.discovered,
            "explored_total": report.explored_total,
            "explored_now": report.explored_now,
            "remaining": report.remaining,
            "violations": report.violations,
        }
        payload["ok"] = payload["ok"] and report.ok
    if composed:
        composed_report = ChaosScheduler(seed=seed).run()
        payload["composed"] = composed_report.as_dict()
        payload["ok"] = payload["ok"] and composed_report.ok
    return payload


def generate_report(es: ExperimentScale, output: str,
                    quick_label: str = "") -> None:
    """Run every experiment and write the markdown report."""
    from repro.harness.report import generate
    generate(es, output, quick_label=quick_label)


def export_synthetic_trace(trace: str, requests: int, sink,
                           scale: float = 1.0, seed: int = 0) -> int:
    """Materialise a synthetic trace as MSR-CSV records into ``sink``."""
    from repro.workloads.trace_io import export_synthetic
    return export_synthetic(trace, requests, sink, scale=scale, seed=seed)


# ----------------------------------------------------------------------
# array lifecycle
# ----------------------------------------------------------------------
class Array:
    """Handle to a running SRC stack, optionally multi-tenant.

    Thin and stable: the underlying :class:`~repro.core.src.SrcCache`
    is reachable as :attr:`cache` for power users, but everything the
    examples and CLI need — volumes, raw submission, stats — is a
    method here.
    """

    def __init__(self, cache: SrcCache,
                 registry: Optional[TenantRegistry] = None):
        self.cache = cache
        self._registry = registry

    @property
    def config(self) -> SrcConfig:
        return self.cache.config

    @property
    def tenants(self) -> Optional[TenantRegistry]:
        """The tenant registry, or None while still single-tenant."""
        return self._registry

    @property
    def size(self) -> int:
        return self.cache.size

    def create_volume(self, tenant: str, size: int,
                      qos: Optional[QosSpec] = None) -> Volume:
        """Carve a tenant volume; installs the registry on first use."""
        if self._registry is None:
            self._registry = TenantRegistry(self.cache)
        return self._registry.create_volume(tenant, size, qos)

    def submit(self, req: Request, now: float) -> float:
        """Raw array-level submission (origin address space)."""
        return self.cache.submit(req, now)

    def read(self, offset: int, length: int, now: float) -> float:
        return self.cache.read(offset, length, now)

    def write(self, offset: int, length: int, now: float,
              fua: bool = False) -> float:
        return self.cache.write(offset, length, now, fua=fua)

    def flush(self, now: float) -> float:
        return self.cache.flush(now)

    def utilization(self) -> float:
        return self.cache.utilization()

    def io_amplification(self) -> float:
        return self.cache.io_amplification()

    def stats(self) -> dict:
        """The full device-tree stats harvest, plus per-tenant stats.

        The tree is :func:`repro.obs.collect` over the cache (nested
        ``as_dict`` snapshots of every device); when the array is
        multi-tenant a ``tenants`` section carries the registry's
        per-tenant occupancy, admission and latency accounting.
        """
        doc = collect(self.cache)
        if self._registry is not None:
            doc["tenants"] = self._registry.as_dict()
        return doc

    def __repr__(self) -> str:
        n = (len(self._registry.tenant_names())
             if self._registry is not None else 0)
        return f"<Array {self.cache.name} tenants={n}>"


def open_array(config: Optional[SrcConfig] = None, *,
               scale: float = 1.0,
               ssds=None, origin=None,
               spec: SsdSpec = SATA_MLC_128) -> Array:
    """Build the paper's platform and return an :class:`Array` handle.

    ``config`` defaults to the Table 7 design point with the 18 GB
    cache window; ``scale`` shrinks capacities and footprints (1/32 is
    the harness default) while latencies and bandwidths stay
    calibrated.  ``ssds`` / ``origin`` override the built devices (for
    fault injection or custom specs).
    """
    cache = build_src(scale, config, ssds=ssds, origin=origin, spec=spec)
    return Array(cache)


__all__ = [
    # array lifecycle
    "Array",
    "open_array",
    # tenancy
    "QosSpec",
    "TenantRegistry",
    "TenantStats",
    "Volume",
    # cluster
    "ClusterConfig",
    "ClusterStats",
    "ClusterVolume",
    "MigrationLedger",
    "ShardRouter",
    "build_cluster",
    "build_shard",
    # request / result types
    "IoOrigin",
    "IoStats",
    "LatencyStats",
    "Op",
    "Request",
    "flush",
    "ExperimentResult",
    # configuration
    "CleanRedundancy",
    "FaultConfig",
    "FlushPoint",
    "GcScheme",
    "QosConfig",
    "ReclaimConfig",
    "RepairConfig",
    "SrcConfig",
    "VictimPolicy",
    "WritePolicy",
    # device specs / builders
    "NVME_MLC_400",
    "SATA_MLC_128",
    "SATA_TLC_128",
    "SsdSpec",
    "SrcCache",
    "build_bcache",
    "build_flashcache",
    "build_src",
    # scales and constants
    "CACHE_SPACE",
    "DEFAULT_SCALE",
    "QUICK_SCALE",
    "ExperimentScale",
    "GIB",
    "KIB",
    "MIB",
    "PAGE_SIZE",
    "mb_per_sec",
    # experiments
    "EXPERIMENTS",
    "run_experiment",
    "run_cluster",
    "run_faults",
    "run_rebuild",
    "result_violations",
    "generate_report",
    "export_synthetic_trace",
    "replay_group",
    # errors
    "ConfigError",
    "ReproError",
    # observability
    "ObsRecorder",
    "attach",
    "collect",
    "events_to_csv",
    "to_json",
    "use",
]
