#!/usr/bin/env python
"""Quickstart: build an SRC cache over four simulated SSDs and use it.

Builds the paper's platform at 1/64 scale — four preconditioned
commodity SATA SSDs caching an iSCSI RAID-10 backend — pushes a small
mixed workload through it, and prints the metrics the paper reports
(throughput, I/O amplification, hit ratio) through the unified
``repro.obs`` stats API, plus a peek at the GC event trace.

Run:  python examples/quickstart.py
"""

import repro.obs as obs
from repro import (PrimaryStorage, SATA_MLC_128, SSDDevice, SrcCache,
                   SrcConfig, precondition)
from repro.common.units import GIB, KIB, MIB, mb_per_sec

SCALE = 1 / 64


def main() -> None:
    # 0. An observability recorder: metrics, events and per-device
    #    latency histograms for everything attached to it.
    recorder = obs.ObsRecorder()

    # 1. Four commodity SSDs, preconditioned to steady state (§5.1).
    spec = SATA_MLC_128.scaled(SCALE)
    ssds = [SSDDevice(spec, name=f"ssd{i}") for i in range(4)]
    for ssd in ssds:
        precondition(ssd, fill_fraction=0.985)

    # 2. Primary storage: 8 disks in RAID-10 behind 1 Gbps iSCSI.
    origin = PrimaryStorage()

    # 3. SRC with the paper's defaults (Table 7), 18 GB cache window.
    config = SrcConfig(cache_space=18 * GIB).scaled(SCALE)
    cache = obs.attach(SrcCache(ssds, origin, config), recorder)
    print(f"SRC ready: {cache.layout.groups} segment groups of "
          f"{config.segment_group_size // MIB} MiB, segments of "
          f"{config.segment_size // KIB} KiB")

    # 4. Drive some I/O: sequential writes, rewrites, then reads.
    now = 0.0
    span = 64 * MIB
    for offset in range(0, span, 64 * KIB):
        now = cache.write(offset, 64 * KIB, now)
    for offset in range(0, span // 2, 64 * KIB):      # hot rewrites
        now = cache.write(offset, 64 * KIB, now)
    read_start = now
    for offset in range(0, span, 64 * KIB):           # read it back
        now = cache.read(offset, 64 * KIB, now)

    # 5. Report — all through the unified stats API: `collect` walks
    #    the device tree into one nested dict of `as_dict()` snapshots.
    tree = obs.collect(cache)
    app = tree["io"]
    print(f"\napplication I/O : {app['total_bytes'] // MIB} MiB "
          f"({app['write_ops']} writes, {app['read_ops']} reads)")
    print(f"simulated time  : {now:.2f} s "
          f"(reads at {mb_per_sec(app['read_bytes'], now - read_start):.0f} MB/s)")
    print(f"hit ratio       : {tree['cache']['hit_ratio']:.2f}")
    print(f"I/O amplification: {cache.io_amplification():.2f}")
    print(f"cache utilization: {tree['utilization']:.2f}")
    print(f"segment writes  : {tree['src']['segment_writes']} "
          f"({tree['src']['partial_segment_writes']} partial)")
    print(f"mapping memory  : {cache.mapping.memory_bytes / 1024:.0f} KiB "
          f"for {cache.mapping.valid_blocks()} blocks")
    for i, ssd in enumerate(ssds):
        sub = tree["children"][f"ssds[{i}]"]
        print(f"  {ssd.name}: {sub['io']['write_bytes'] // MIB} MiB "
              f"written, FTL write amplification "
              f"{sub['ftl']['write_amplification']:.2f}")

    # 6. The recorder saw every GC cycle, erase, seal and destage.
    counts = recorder.trace.counts()
    print("\nevent trace     : "
          + (", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
             or "no events"))
    p99 = recorder.device_latency(cache.name)
    if p99 is not None:
        print(f"cache p99 latency: {p99.p99 * 1e3:.2f} ms "
              f"over {p99.count} requests")


if __name__ == "__main__":
    main()
