#!/usr/bin/env python
"""Quickstart: build an SRC cache over four simulated SSDs and use it.

Builds the paper's platform at 1/64 scale — four preconditioned
commodity SATA SSDs caching an iSCSI RAID-10 backend — pushes a small
mixed workload through it, and prints the metrics the paper reports
(throughput, I/O amplification, hit ratio), plus the cache's internal
accounting.

Run:  python examples/quickstart.py
"""

from repro import (PrimaryStorage, SATA_MLC_128, SSDDevice, SrcCache,
                   SrcConfig, precondition)
from repro.common.units import GIB, KIB, MIB, PAGE_SIZE, mb_per_sec

SCALE = 1 / 64


def main() -> None:
    # 1. Four commodity SSDs, preconditioned to steady state (§5.1).
    spec = SATA_MLC_128.scaled(SCALE)
    ssds = [SSDDevice(spec, name=f"ssd{i}") for i in range(4)]
    for ssd in ssds:
        precondition(ssd, fill_fraction=0.985)

    # 2. Primary storage: 8 disks in RAID-10 behind 1 Gbps iSCSI.
    origin = PrimaryStorage()

    # 3. SRC with the paper's defaults (Table 7), 18 GB cache window.
    config = SrcConfig(cache_space=18 * GIB).scaled(SCALE)
    cache = SrcCache(ssds, origin, config)
    print(f"SRC ready: {cache.layout.groups} segment groups of "
          f"{config.segment_group_size // MIB} MiB, segments of "
          f"{config.segment_size // KIB} KiB")

    # 4. Drive some I/O: sequential writes, rewrites, then reads.
    now = 0.0
    span = 64 * MIB
    for offset in range(0, span, 64 * KIB):
        now = cache.write(offset, 64 * KIB, now)
    for offset in range(0, span // 2, 64 * KIB):      # hot rewrites
        now = cache.write(offset, 64 * KIB, now)
    read_start = now
    for offset in range(0, span, 64 * KIB):           # read it back
        now = cache.read(offset, 64 * KIB, now)

    # 5. Report.
    app = cache.stats
    print(f"\napplication I/O : {app.total_bytes // MIB} MiB "
          f"({app.write_ops} writes, {app.read_ops} reads)")
    print(f"simulated time  : {now:.2f} s "
          f"(reads at {mb_per_sec(app.read_bytes, now - read_start):.0f} MB/s)")
    print(f"hit ratio       : {cache.cstats.hit_ratio:.2f}")
    print(f"I/O amplification: {cache.io_amplification():.2f}")
    print(f"cache utilization: {cache.utilization():.2f}")
    print(f"segment writes  : {cache.srcstats.segment_writes} "
          f"({cache.srcstats.partial_segment_writes} partial)")
    print(f"mapping memory  : {cache.mapping.memory_bytes / 1024:.0f} KiB "
          f"for {cache.mapping.valid_blocks()} blocks")
    for ssd in ssds:
        print(f"  {ssd.name}: {ssd.stats.write_bytes // MIB} MiB written, "
              f"FTL write amplification {ssd.write_amplification:.2f}")


if __name__ == "__main__":
    main()
