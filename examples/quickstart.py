#!/usr/bin/env python
"""Quickstart: open an SRC array, carve tenant volumes, and use them.

Builds the paper's platform at 1/64 scale — four preconditioned
commodity SATA SSDs caching an iSCSI RAID-10 backend — entirely
through the stable :mod:`repro.api` surface: ``open_array`` builds the
stack, ``create_volume`` carves per-tenant namespaces with QoS
classes, ``volume.submit`` drives I/O, and ``array.stats()`` returns
the unified stats document (device tree + per-tenant accounting).

Run:  python examples/quickstart.py
"""

from repro.api import (KIB, MIB, ObsRecorder, Op, QosSpec, Request,
                       mb_per_sec, open_array, use)

SCALE = 1 / 64


def main() -> None:
    # 1. The paper's platform in one call: preconditioned SSDs, the
    #    RAID-10 origin, SRC with Table 7 defaults on top.  The `use`
    #    context routes every event and histogram to one recorder.
    recorder = ObsRecorder()
    with use(recorder):
        array = open_array(scale=SCALE)
    config = array.config
    print(f"SRC ready: {array.cache.layout.groups} segment groups of "
          f"{config.segment_group_size // MIB} MiB, segments of "
          f"{config.segment_size // KIB} KiB")

    # 2. Two tenants: a guaranteed-share database and a best-effort
    #    scratch volume, each a private LBA namespace over the array.
    db = array.create_volume("db", size=48 * MIB,
                             qos=QosSpec(min_share=0.25, name="gold"))
    scratch = array.create_volume("scratch", size=48 * MIB,
                                  qos=QosSpec(max_share=0.25,
                                              name="best-effort"))

    # 3. Drive some I/O: sequential writes, rewrites, then reads.
    now = 0.0
    span = 32 * MIB
    for offset in range(0, span, 64 * KIB):
        now = db.submit(Request(Op.WRITE, offset, 64 * KIB), now)
        now = scratch.submit(Request(Op.WRITE, offset, 64 * KIB), now)
    for offset in range(0, span // 2, 64 * KIB):      # hot rewrites
        now = db.submit(Request(Op.WRITE, offset, 64 * KIB), now)
    read_start = now
    for offset in range(0, span, 64 * KIB):           # read it back
        now = db.submit(Request(Op.READ, offset, 64 * KIB), now)

    # 4. Report — one stats document for the whole stack.
    tree = array.stats()
    app = tree["io"]
    print(f"\napplication I/O : {app['total_bytes'] // MIB} MiB "
          f"({app['write_ops']} writes, {app['read_ops']} reads)")
    print(f"simulated time  : {now:.2f} s (reads at "
          f"{mb_per_sec(app['read_bytes'], now - read_start):.0f} MB/s)")
    print(f"hit ratio       : {tree['cache']['hit_ratio']:.2f}")
    print(f"I/O amplification: {array.io_amplification():.2f}")
    print(f"cache utilization: {array.utilization():.2f}")
    print(f"segment writes  : {tree['src']['segment_writes']} "
          f"({tree['src']['partial_segment_writes']} partial)")

    # 5. Per-tenant accounting comes from the same document.
    for name, doc in tree["tenants"]["tenants"].items():
        lat = doc["latency"]
        print(f"  tenant {name:<8}: {doc['cached_blocks']:>6} blocks "
              f"cached (share {doc['share']:.2f}), "
              f"p99 {lat['p99'] * 1e3:.2f} ms over {lat['count']} ops")

    # 6. The recorder saw every GC cycle, erase, seal and destage.
    counts = recorder.trace.counts()
    print("\nevent trace     : "
          + (", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
             or "no events"))


if __name__ == "__main__":
    main()
