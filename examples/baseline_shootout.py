#!/usr/bin/env python
"""Baseline shootout: SRC vs Bcache5 vs Flashcache5 (Figure 7, live).

Replays one trace group against the three cache targets on identical
hardware (four SSDs; baselines get them as RAID-5 with 4 KiB chunks,
2 MB buckets/sets and 90% writeback thresholds, per §5.4) and prints
the comparison.

Run:  python examples/baseline_shootout.py [write|mixed|read]  (~3 min)
"""

import sys

from repro.baselines.common import WritePolicy
from repro.core.config import GcScheme, SrcConfig
from repro.harness.context import (CACHE_SPACE, ExperimentScale,
                                   build_bcache, build_flashcache,
                                   build_src)
from repro.workloads.replay import replay_group

ES = ExperimentScale(scale=1 / 64, warmup=20.0, duration=6.0)


def main() -> None:
    group = sys.argv[1] if len(sys.argv) > 1 else "write"
    targets = [
        ("SRC", lambda: build_src(
            ES.scale, SrcConfig(cache_space=CACHE_SPACE))),
        ("SRC-S2D", lambda: build_src(
            ES.scale, SrcConfig(cache_space=CACHE_SPACE,
                                gc_scheme=GcScheme.S2D))),
        ("Bcache5", lambda: build_bcache(
            ES.scale, raid_level=5, policy=WritePolicy.WRITE_BACK,
            writeback_percent=0.90)),
        ("Flashcache5", lambda: build_flashcache(
            ES.scale, raid_level=5, policy=WritePolicy.WRITE_BACK,
            dirty_thresh_pct=0.90)),
    ]
    print(f"trace group: {group}\n")
    print(f"{'scheme':<13} {'MB/s':>8} {'I/O amp':>8} {'hit':>6}")
    print("-" * 40)
    results = {}
    for name, build in targets:
        result = replay_group(build(), group, scale=ES.scale,
                              duration=ES.duration, warmup=ES.warmup,
                              seed=ES.seed)
        results[name] = result
        print(f"{name:<13} {result.throughput_mb_s:8.1f} "
              f"{result.io_amplification:8.2f} {result.hit_ratio:6.2f}")
    factor_bc = results["SRC"].throughput_mb_s / \
        max(results["Bcache5"].throughput_mb_s, 1e-9)
    factor_fc = results["SRC"].throughput_mb_s / \
        max(results["Flashcache5"].throughput_mb_s, 1e-9)
    print(f"\nSRC vs Bcache5: {factor_bc:.1f}x   "
          f"SRC vs Flashcache5: {factor_fc:.1f}x "
          f"(paper: 2.8-3.1x and 2.3-2.8x)")


if __name__ == "__main__":
    main()
