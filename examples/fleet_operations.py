#!/usr/bin/env python
"""Fleet operations: wear monitoring and online array scaling.

Operates the cache the way a storage admin would over its life:

1. run a workload and read per-drive wear reports (write
   amplification, consumed endurance, projected lifetime);
2. expand the RAID-5 set from 4 to 5 SSDs online (§6 future work) —
   contents migrate through the log, service continues;
3. contract back to 4 drives, pulling one SSD out of the set.

Run:  python examples/fleet_operations.py   (~1 min)
"""

from repro import (PrimaryStorage, SATA_MLC_128, SSDDevice, SrcCache,
                   SrcConfig, precondition)
from repro.common.units import GIB, MIB
from repro.core.scaling import contract_array, expand_array
from repro.ssd.wear import (array_wear_summary,
                            projected_lifetime_seconds, wear_report)

SCALE = 1 / 64


def build():
    spec = SATA_MLC_128.scaled(SCALE)
    ssds = [SSDDevice(spec, name=f"ssd{i}") for i in range(4)]
    for ssd in ssds:
        precondition(ssd, fill_fraction=0.985)
    config = SrcConfig(cache_space=18 * GIB).scaled(SCALE)
    return SrcCache(ssds, PrimaryStorage(), config)


def run_workload(cache, start, mib=96):
    now = start
    for i in range(mib * MIB // (64 * 1024)):
        offset = (i * 64 * 1024) % (256 * MIB)
        now = cache.write(offset, 64 * 1024, now)
    return now


def main() -> None:
    cache = build()
    now = run_workload(cache, 0.0)

    print("— wear after the first workload —")
    for ssd in cache.ssds:
        report = wear_report(ssd)
        life = projected_lifetime_seconds(ssd, now)
        print(f"  {ssd.name}: WA {report.write_amplification:4.2f}, "
              f"endurance used {report.consumed_fraction * 100:6.3f}%, "
              f"evenness {report.wear_evenness:.2f}, "
              f"projected life {life / 3600:8.1f} sim-hours at "
              f"full-rate writing")
    summary = array_wear_summary(cache.ssds)
    print(f"  array: mean WA {summary['mean_write_amplification']:.2f}")

    print("\n— expanding 4 -> 5 drives online —")
    spec = SATA_MLC_128.scaled(SCALE)
    blocks_before = cache.mapping.valid_blocks() + len(cache.dirty_buf)
    cache5, end = expand_array(cache, SSDDevice(spec, name="ssd4"), now)
    print(f"  migration finished at t={end:.2f}s; capacity "
          f"{cache.layout.cache_data_capacity_blocks()} -> "
          f"{cache5.layout.cache_data_capacity_blocks()} blocks; "
          f"{blocks_before} cached blocks preserved")

    now = run_workload(cache5, end + 1.0)
    print(f"  five-drive array serving writes "
          f"(hit ratio {cache5.cstats.hit_ratio:.2f})")

    print("\n— contracting 5 -> 4 drives (retiring ssd2) —")
    cache4, end = contract_array(cache5, remove_index=2, now=now)
    print(f"  migration finished at t={end:.2f}s; "
          f"{cache4.mapping.valid_blocks()} blocks on the 4-drive set")
    cache4.mapping.check_invariants()
    print("  invariants hold; service continues")


if __name__ == "__main__":
    main()
