#!/usr/bin/env python
"""Design-space tour: how Table 7's knobs move the needle.

Replays the Mixed trace group against four SRC configurations —
the paper's default, S2D-only GC, parity-for-clean, and flush-per-
segment — and prints a side-by-side comparison, a miniature of the
paper's §5.2 exploration.

Run:  python examples/design_space_tour.py          (~2 min)
"""

from repro.api import (CACHE_SPACE, CleanRedundancy, ExperimentScale,
                       FlushPoint, GcScheme, ReclaimConfig, SrcConfig,
                       build_src, replay_group)

ES = ExperimentScale(scale=1 / 64, warmup=20.0, duration=6.0)

VARIANTS = [
    ("paper defaults (Sel-GC, NPC, per-SG flush)", {}),
    ("S2D-only GC", {"reclaim": ReclaimConfig(gc_scheme=GcScheme.S2D)}),
    ("parity for clean data (PC)",
     {"clean_redundancy": CleanRedundancy.PC}),
    ("flush per segment", {"flush_point": FlushPoint.PER_SEGMENT}),
]


def main() -> None:
    print(f"{'configuration':<45} {'MB/s':>7} {'amp':>6} {'hit':>5}")
    print("-" * 66)
    baseline = None
    for name, overrides in VARIANTS:
        config = SrcConfig(cache_space=CACHE_SPACE, **overrides)
        cache = build_src(ES.scale, config=config)
        result = replay_group(cache, "mixed", scale=ES.scale,
                              duration=ES.duration, warmup=ES.warmup,
                              seed=ES.seed)
        if baseline is None:
            baseline = result.throughput_mb_s
        rel = result.throughput_mb_s / baseline
        print(f"{name:<45} {result.throughput_mb_s:7.1f} "
              f"{result.io_amplification:6.2f} {result.hit_ratio:5.2f}"
              f"   ({rel:4.2f}x)")
    print("\npaper shapes: Sel-GC > S2D; NPC > PC; per-SG flush > "
          "per-segment flush")


if __name__ == "__main__":
    main()
