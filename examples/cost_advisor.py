#!/usr/bin/env python
"""Cost advisor: which SSD set should back your cache?

Runs one trace group over SRC built from each Table 12 product (four
SATA drives as RAID-5, or the single NVMe without parity) and ranks
the products by raw throughput, MB/s per dollar, and lifetime per
dollar — the paper's Figure 6 as a decision tool.

Run:  python examples/cost_advisor.py [write|mixed|read]   (~2 min)
"""

import sys

from repro.cost.products import PRODUCT_ORDER, PRODUCTS
from repro.harness.context import ExperimentScale
from repro.harness.exp_fig6 import measure

ES = ExperimentScale(scale=1 / 64, warmup=20.0, duration=6.0)


def main() -> None:
    group = sys.argv[1] if len(sys.argv) > 1 else "mixed"
    print(f"workload group: {group}\n")
    rows = []
    for key in PRODUCT_ORDER:
        product = PRODUCTS[key]
        ce = measure(product, group, ES)
        rows.append(ce)
        print(f"measured {key:<14} {ce.throughput_mb_s:7.1f} MB/s, "
              f"lifetime {ce.lifetime_days:6.0f} days "
              f"(${product.set_cost_usd:.0f})")

    print(f"\n{'ranking by':<22} best -> worst")
    print("-" * 70)
    for title, metric in (
            ("throughput", lambda ce: ce.throughput_mb_s),
            ("MB/s per dollar", lambda ce: ce.perf_per_dollar),
            ("lifetime per dollar", lambda ce: ce.lifetime_per_dollar)):
        ranked = sorted(rows, key=metric, reverse=True)
        print(f"{title:<22} " + " > ".join(ce.product for ce in ranked))
    print("\npaper shape: TLC leads MB/s/$; MLC leads lifetime/$; the "
          "NVMe is fast but fail-stop and worst on lifetime/$")


if __name__ == "__main__":
    main()
