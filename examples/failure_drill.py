#!/usr/bin/env python
"""Failure drill: silent corruption, SSD loss, rebuild, crash recovery.

Walks through every failure mode the paper's §4.1 design handles:

1. silent data corruption detected by checksums and repaired via
   parity (dirty data) or origin re-fetch (NPC clean data);
2. a fail-stop SSD: degraded reads reconstruct from the stripe;
3. online rebuild onto a replacement drive;
4. power failure: the MS/ME metadata scan restores both clean and
   dirty mappings, discarding torn segments.

Run:  python examples/failure_drill.py
"""

from repro import (PrimaryStorage, SATA_MLC_128, SSDDevice, SrcCache,
                   SrcConfig, precondition, recover)
from repro.common.units import GIB, PAGE_SIZE

SCALE = 1 / 64


def build_cache():
    spec = SATA_MLC_128.scaled(SCALE)
    ssds = [SSDDevice(spec, name=f"ssd{i}") for i in range(4)]
    for ssd in ssds:
        precondition(ssd, fill_fraction=0.985)
    origin = PrimaryStorage()
    config = SrcConfig(cache_space=18 * GIB).scaled(SCALE)
    return SrcCache(ssds, origin, config)


def fill(cache, blocks, dirty=True):
    now = 0.0
    for i in range(blocks):
        if dirty:
            now = cache.write(i * PAGE_SIZE, PAGE_SIZE, now)
        else:
            now = cache.read(i * PAGE_SIZE, PAGE_SIZE, now + 1e-3)
    return now


def main() -> None:
    cache = build_cache()
    segment_blocks = cache.layout.dirty_segment_capacity()
    now = fill(cache, segment_blocks * 4)
    print(f"cached {cache.mapping.valid_blocks()} dirty blocks across "
          f"{cache.srcstats.segment_writes} segments")

    # --- 1. silent corruption ---------------------------------------
    victim_entry = cache.mapping.lookup(0)
    bad_ssd = cache.ssds[victim_entry.location.ssd]
    bad_ssd.inject_corruption(victim_entry.location.offset, PAGE_SIZE)
    now = cache.read(0, PAGE_SIZE, now + 1.0)
    print(f"\n[corruption] checksum mismatch on {bad_ssd.name}: "
          f"repaired={cache.srcstats.corruption_repairs}, "
          f"via parity={cache.srcstats.parity_reconstructions}, "
          f"data loss={cache.srcstats.unrecoverable_errors}")

    # --- 2. fail-stop SSD + degraded reads --------------------------
    entry = cache.mapping.lookup(5)
    failed = cache.ssds[entry.location.ssd]
    failed.fail()
    now = cache.read(5 * PAGE_SIZE, PAGE_SIZE, now + 1.0)
    print(f"\n[ssd loss] {failed.name} failed; degraded reads="
          f"{cache.srcstats.degraded_reads} "
          f"(reconstructed from the other 3 drives)")

    # --- 3. online rebuild onto a replacement -----------------------
    failed.repair()          # swap in a blank replacement
    done = cache.rebuild_ssd(cache.ssds.index(failed), now + 1.0)
    print(f"[rebuild] {failed.name} rebuilt in "
          f"{done - now - 1.0:.2f} simulated seconds "
          f"({failed.stats.write_bytes // (1 << 20)} MiB rewritten)")

    # --- 4. crash and recover ---------------------------------------
    cache.write(999_999 * PAGE_SIZE, PAGE_SIZE, done + 1.0)  # unpersisted
    recovered, report = recover(cache.ssds, cache.origin, cache.config,
                                cache.metadata)
    print(f"\n[power failure] metadata scan: "
          f"{report.segments_recovered} segments recovered, "
          f"{report.segments_discarded} torn segments discarded, "
          f"{report.blocks_recovered} blocks "
          f"({report.dirty_blocks} dirty / {report.clean_blocks} clean) "
          f"in {report.elapsed * 1000:.1f} simulated ms")
    print(f"unpersisted buffered write survived: "
          f"{recovered.mapping.lookup(999_999) is not None} (expected False)")
    print(f"dirty block 0 survived: "
          f"{recovered.mapping.lookup(0) is not None} (expected True)")


if __name__ == "__main__":
    main()
