"""Bench: Tables 4, 6, 12 — input data reproduction and validation."""

import pytest

from repro.harness import exp_table6, exp_tables4_12

from _bench_utils import emit, run_once


def test_table4_and_12_product_sheets(benchmark):
    def build():
        return exp_tables4_12.run_table4(), exp_tables4_12.run_table12()

    t4, t12 = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(t4)
    emit(t12)
    # Paper observation: price proportional to capacity within a line,
    # interface the key price factor.
    assert t12.cell("B-TLC(SATA)", "GB/$") > t12.cell("C-MLC(NVMe)", "GB/$")


def test_table6_trace_characteristics(benchmark, es):
    result = run_once(benchmark, exp_table6.run, es, sample=2000)
    emit(result)
    for row in result.rows:
        name, group, spec_kb, meas_kb, spec_r, meas_r = row
        assert meas_kb == pytest.approx(spec_kb, rel=0.35), \
            f"{name}: request size off spec"
        assert meas_r == pytest.approx(spec_r, abs=5.0), \
            f"{name}: read ratio off spec"
