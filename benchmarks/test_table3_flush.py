"""Bench: Table 3 — flush command impact on a raw SSD."""

from repro.harness import exp_table3

from _bench_utils import emit, run_once


def test_table3_flush_impact(benchmark, es):
    result = run_once(benchmark, exp_table3.run, es)
    emit(result)
    for pattern in ("Sequential", "Random"):
        free = result.cell(pattern, "No flush")
        flushed = result.cell(pattern, "flush")
        assert free > 2.0 * flushed, \
            f"{pattern}: flush must cost at least 2x (paper: 4-8x)"
    # Random suffers more than sequential in relative terms (8.3 vs 4.1).
    seq_cut = result.cell("Sequential", "Reduction (x)")
    rand_cut = result.cell("Random", "Reduction (x)")
    assert rand_cut > 0 and seq_cut > 0
