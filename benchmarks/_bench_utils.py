"""Shared helpers for the benchmark modules."""


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def emit(result):
    """Print the reproduced table below the benchmark output."""
    print()
    print(result.render())
