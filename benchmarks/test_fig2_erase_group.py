"""Bench: Figure 2 — erase group size emerges from the FTL model."""

from repro.harness import exp_fig2

from _bench_utils import emit, run_once


def test_fig2_erase_group_size(benchmark, es):
    result = run_once(benchmark, exp_fig2.run, es,
                      ops_levels=(0.0, 0.2, 0.5),
                      sizes=(32, 128, 256, 512))
    emit(result)
    # Throughput grows with write-unit size at every OPS level.
    for row in result.rows:
        small, big = float(row[1]), float(row[-2])   # 32MB vs 256MB
        assert big > small, f"OPS {row[0]}: big units must sustain more"
    # At the 256MB erase group, OPS barely matters (convergence).
    at_256 = [float(row[3]) for row in result.rows]
    assert max(at_256) / min(at_256) < 1.25, \
        "throughput at the erase group size must be OPS-independent"
    # At small units, OPS matters a lot.
    at_32 = [float(row[1]) for row in result.rows]
    assert max(at_32) / min(at_32) > 1.5, \
        "small write units must be OPS-sensitive"
