"""Bench: Figure 4 — SRC throughput/amplification vs erase group size."""

from repro.harness import exp_fig4

from _bench_utils import emit, run_once


def parse(cell):
    tput, amp = cell.split(" (")
    return float(tput), float(amp.rstrip(")"))


def test_fig4_src_erase_group(benchmark, es):
    # Sizes are capped at the SSDs' 256 MB erase group: beyond it the
    # scaled-down cache holds too few segment groups for GC to breathe
    # (18 GB / 1 GB = 18 groups in the paper; 4 at quick scale), which
    # is a scale artifact rather than the paper's regime.
    result = run_once(benchmark, exp_fig4.run, es, sizes=(32, 128, 256))
    emit(result)
    for row in result.rows:
        small_tput, small_amp = parse(row[1])
        big_tput, big_amp = parse(row[-1])
        assert small_tput > 0 and big_tput > 0
        # Paper shape: throughput rises toward the SSD erase group size.
        assert big_tput >= small_tput * 0.9, \
            f"{row[0]}: larger erase groups must sustain more"
        assert small_amp <= big_amp * 1.5, \
            f"{row[0]}: small units should not inflate amplification"
