"""Bench: Table 9 — Parity-for-Clean vs No-Parity-for-Clean."""

from repro.harness import exp_table9

from _bench_utils import emit, run_once


def parse(cell):
    tput, amp = cell.split(" (")
    return float(tput), float(amp.rstrip(")"))


def test_table9_pc_vs_npc(benchmark, es):
    result = run_once(benchmark, exp_table9.run, es)
    emit(result)
    for row in result.rows:
        group = row[0]
        pc_tput, pc_amp = parse(row[1])
        npc_tput, npc_amp = parse(row[2])
        # Paper: NPC outperforms PC on every group (biggest on Write).
        assert npc_tput >= pc_tput * 0.95, \
            f"{group}: NPC must not lose to PC"
        # NPC writes less (no clean parity) -> amplification not higher.
        assert npc_amp <= pc_amp * 1.1, \
            f"{group}: NPC must not amplify more than PC"
    write_gain = parse(result.cell("write", "NPC"))[0] / \
        max(parse(result.cell("write", "PC"))[0], 1e-9)
    assert write_gain >= 1.0, "Write group gains most from NPC"
