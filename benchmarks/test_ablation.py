"""Bench: design-choice ablations (hotness bitmap, hot/clean split)."""

from repro.harness import exp_ablation

from _bench_utils import emit, run_once


def parse(cell):
    tput, amp = cell.split(" (")
    return float(tput), float(amp.rstrip(")"))


def test_ablations(benchmark, es):
    result = run_once(benchmark, exp_ablation.run, es)
    emit(result)
    for row in result.rows:
        group = row[0]
        aware_tput, aware_amp = parse(row[1])
        blind_tput, blind_amp = parse(row[2])
        sep_tput, _ = parse(row[3])
        # Hotness awareness must not lose: blind S2S recopies cold clean
        # blocks for no benefit.
        assert aware_tput >= blind_tput * 0.9, \
            f"{group}: hotness bitmap must pay for itself"
        # The future-work hot/clean split stays in the same ballpark.
        assert sep_tput >= aware_tput * 0.7
