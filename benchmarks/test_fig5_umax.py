"""Bench: Figure 5 — the UMAX threshold sweep for Sel-GC."""

from repro.harness import exp_fig5

from _bench_utils import emit, run_once


def parse(cell):
    tput, amp = cell.split(" (")
    return float(tput), float(amp.rstrip(")"))


def test_fig5_umax_sweep(benchmark, es):
    levels = (0.30, 0.70, 0.90)
    result = run_once(benchmark, exp_fig5.run, es, levels=levels)
    emit(result)
    for row in result.rows:
        group = row[0]
        low_tput, low_amp = parse(row[1])    # UMAX 30%
        high_tput, high_amp = parse(row[3])  # UMAX 90%
        # Paper shape: throughput rises toward the 90% peak...
        assert high_tput >= low_tput * 0.9, \
            f"{group}: UMAX 90% should not lose to 30%"
        # ...and amplification grows with UMAX (more S2S copying).
        assert high_amp >= low_amp * 0.9, \
            f"{group}: amplification should grow with UMAX"
