"""Bench: Figure 7 — SRC vs SRC-S2D vs Bcache5 vs Flashcache5.

The headline result: "SRC performs at least 2 times better in terms of
throughput than existing open source solutions."
"""

from repro.harness import exp_fig7

from _bench_utils import emit, run_once


def parse(cell):
    tput, amp, hit = cell.split(" | ")
    return float(tput), float(amp), float(hit)


def test_fig7_src_vs_existing(benchmark, es):
    result = run_once(benchmark, exp_fig7.run, es)
    emit(result)
    for i, group in enumerate(("write", "mixed", "read"), start=1):
        src_tput, src_amp, src_hit = parse(result.cell("SRC", group))
        s2d_tput, s2d_amp, s2d_hit = parse(result.cell("SRC-S2D", group))
        bc_tput, _, _ = parse(result.cell("Bcache5", group))
        fc_tput, _, _ = parse(result.cell("Flashcache5", group))
        # Headline: SRC at least 2x over both baselines.
        assert src_tput >= 2.0 * bc_tput, \
            f"{group}: SRC must be >=2x Bcache5 ({src_tput} vs {bc_tput})"
        assert src_tput >= 2.0 * fc_tput, \
            f"{group}: SRC must be >=2x Flashcache5 ({src_tput} vs {fc_tput})"
        # Sel-GC vs S2D: SRC does better with higher amp and hit ratio.
        assert src_tput >= s2d_tput * 0.9, \
            f"{group}: SRC (Sel-GC) must not trail SRC-S2D"
        assert src_hit >= s2d_hit * 0.95, \
            f"{group}: Sel-GC must hold hit ratio at least as high"
