"""Bench: Figure 1 — Bcache/Flashcache over RAID-0/1/4/5."""

from repro.harness import exp_fig1

from _bench_utils import emit, run_once


def test_fig1_raid_levels(benchmark, es):
    result = run_once(benchmark, exp_fig1.run, es)
    emit(result)
    for cache in ("Bcache", "Flashcache"):
        raid0 = result.cell(cache, "RAID-0")
        raid1 = result.cell(cache, "RAID-1")
        raid5 = result.cell(cache, "RAID-5")
        assert raid0 > 0 and raid5 > 0
        # Robust paper shapes: RAID-0 (no redundancy) leads; mirroring
        # costs; parity costs most for 4K random writes.
        assert raid0 >= raid1, f"{cache}: RAID-0 must not lose to RAID-1"
        assert raid1 >= raid5 * 0.9, \
            f"{cache}: parity RAID must not beat mirroring"
    # NOT asserted: the paper's Fig-1 Bcache-vs-Flashcache ordering
    # under parity. In our model Bcache's journal flushes dominate its
    # parity cost (consistent with the paper's own Fig-7 finding that
    # flushes are Bcache's bottleneck), flipping that one ordering;
    # see EXPERIMENTS.md.
