"""Bench: Table 11 — flush per segment vs per segment group."""

from repro.harness import exp_table11

from _bench_utils import emit, run_once


def parse(cell):
    tput, amp = cell.split(" (")
    return float(tput), float(amp.rstrip(")"))


def test_table11_flush_control(benchmark, es):
    result = run_once(benchmark, exp_table11.run, es)
    emit(result)
    for row in result.rows:
        group = row[0]
        per_seg, _ = parse(row[1])
        per_sg, _ = parse(row[2])
        # Paper: issuing flushes per segment costs throughput (~10% on
        # Write, >40% on Read) vs the per-SG default.
        assert per_sg >= per_seg * 0.95, \
            f"{group}: per-SG flush must not lose to per-segment"
