"""Bench: Table 8 — S2D vs Sel-GC x FIFO/Greedy victim selection."""

from repro.harness import exp_table8

from _bench_utils import emit, run_once


def parse(cell):
    tput, amp = cell.split(" (")
    return float(tput), float(amp.rstrip(")"))


def test_table8_free_space_management(benchmark, es):
    result = run_once(benchmark, exp_table8.run, es)
    emit(result)
    for row in result.rows:
        group = row[0]
        s2d_best = max(parse(row[1])[0], parse(row[2])[0])
        sel_best = max(parse(row[3])[0], parse(row[4])[0])
        # Paper: Sel-GC considerably outperforms S2D on every group.
        assert sel_best >= s2d_best * 0.9, \
            f"{group}: Sel-GC must be at least competitive with S2D"
        # Paper: S2D has lower amplification (it copies nothing).
        s2d_amp = min(parse(row[1])[1], parse(row[2])[1])
        sel_amp = max(parse(row[3])[1], parse(row[4])[1])
        assert s2d_amp <= sel_amp * 1.05, \
            f"{group}: S2D must not amplify more than Sel-GC"
