"""Bench: Figure 6 — cost-effectiveness of SATA RAID-5 vs single NVMe."""

from repro.harness import exp_fig6

from _bench_utils import emit, run_once


def parse(cell):
    tput, days, perf_d, life_d = cell.split(" | ")
    return float(tput), float(days), float(perf_d), float(life_d)


def test_fig6_cost_effectiveness(benchmark, es):
    result = run_once(benchmark, exp_fig6.run, es)
    emit(result)
    groups = ["write", "mixed", "read"]
    for gi, group in enumerate(groups, start=1):
        cells = {row[0]: parse(row[gi]) for row in result.rows}
        # (b)/(d): MLC always beats TLC on lifetime and lifetime/$.
        for company in ("A", "B"):
            mlc = cells[f"{company}-MLC(SATA)"]
            tlc = cells[f"{company}-TLC(SATA)"]
            assert mlc[1] > tlc[1], \
                f"{group}: {company}-MLC must outlive {company}-TLC"
            assert mlc[3] > tlc[3], \
                f"{group}: MLC must win lifetime/$"
        # (d): the RAID-5 SATA sets beat the single NVMe on lifetime/$.
        nvme = cells["C-MLC(NVMe)"]
        assert cells["A-MLC(SATA)"][3] > nvme[3], \
            f"{group}: SATA RAID-5 must win lifetime/$ over NVMe"
        # (c): TLC generally wins MB/s per dollar among SATA sets.
        assert cells["B-TLC(SATA)"][2] >= cells["B-MLC(SATA)"][2] * 0.8, \
            f"{group}: TLC should be competitive on MB/s/$"
