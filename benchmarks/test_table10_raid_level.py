"""Bench: Table 10 — SRC cache RAID level 0/4/5."""

from repro.harness import exp_table10

from _bench_utils import emit, run_once


def parse(cell):
    tput, amp = cell.split(" (")
    return float(tput), float(amp.rstrip(")"))


def test_table10_raid_levels(benchmark, es):
    result = run_once(benchmark, exp_table10.run, es)
    emit(result)
    for row in result.rows:
        group = row[0]
        r0, _ = parse(row[1])
        r4, _ = parse(row[2])
        r5, _ = parse(row[3])
        # RAID-0 (no parity) leads; parity costs roughly 20%.
        assert r0 >= r4 * 0.95 and r0 >= r5 * 0.95, \
            f"{group}: RAID-0 must lead"
        # RAID-5 at least matches RAID-4 (distributed parity).
        assert r5 >= r4 * 0.85, f"{group}: RAID-5 must not trail RAID-4"
        # The parity overhead is bounded (paper: ~20%; allow quick-
        # preset noise up to 2.5x before calling it broken).
        assert r0 / max(r5, 1e-9) < 2.5, \
            f"{group}: parity penalty must stay moderate"
