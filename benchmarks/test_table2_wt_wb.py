"""Bench: Table 2 — write-through vs write-back on a single SSD."""

from repro.harness import exp_table2

from _bench_utils import emit, run_once


def test_table2_wt_vs_wb(benchmark, es):
    result = run_once(benchmark, exp_table2.run, es)
    emit(result)
    for cache in ("Bcache", "Flashcache"):
        wt = result.cell(cache, "WT")
        wb = result.cell(cache, "WB")
        assert wb > wt, f"{cache}: write-back must beat write-through"
    # Flashcache gains more from WB than Bcache does (17.5x vs 4.3x):
    # its WT path is the slowest of the four cells.
    assert result.cell("Flashcache", "WT") <= result.cell("Bcache", "WB")
