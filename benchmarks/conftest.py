"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
asserts its *shape* (orderings, rough factors) rather than absolute
numbers.  By default the quick preset runs (scale 1/64, short windows);
set ``REPRO_BENCH_FULL=1`` for the paper-shaped preset (scale 1/32,
60 s warm-up + 10 s measured per cell — slower but smoother numbers).
"""

import os

import pytest

from repro.harness.context import DEFAULT_SCALE, QUICK_SCALE


@pytest.fixture(scope="session")
def es():
    if os.environ.get("REPRO_BENCH_FULL"):
        return DEFAULT_SCALE
    return QUICK_SCALE
