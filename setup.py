"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments whose
setuptools lacks the ``wheel`` package required by PEP 660 editable
installs.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
